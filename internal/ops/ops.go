// Package ops implements the operation modules of the paper's Table 1 —
// the shared L3 function core every protocol realization composes from —
// plus F_pass, the source-label guard of §2.4.
//
//	key  1  F_32_match   32-bit address longest-prefix match
//	key  2  F_128_match  128-bit address longest-prefix match
//	key  3  F_source     marks the packet's source-address field
//	key  4  F_FIB        content-name FIB match (+PIT record, +cache check)
//	key  5  F_PIT        pending-interest match and fan-out
//	key  6  F_parm       derive hop key, load authentication parameters
//	key  7  F_MAC        compute the hop validation tag (OPV)
//	key  8  F_mark       update the path-verification mark (PVF)
//	key  9  F_ver        destination verification (host operation)
//	key 10  F_DAG        XIA DAG traversal
//	key 11  F_intent     XIA intent handling
//	key 12  F_pass       source-label verification
//
// Each module is constructed with the router (or host) state it needs and
// registered in a core.Registry; the engine dispatches to it by operation
// key. Modules are safe for concurrent use and the router-side ones are
// allocation-free except where they legitimately create router state (PIT
// entries, cache insertions) or run AES-CMAC (whose per-packet key schedule
// is precisely the cost the paper's 2EM choice avoids).
package ops

import (
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/opt"
	"dip/internal/pit"
	"dip/internal/xia"
)

// SessionStore resolves OPT sessions for host-side verification (F_ver).
type SessionStore interface {
	// LookupSession returns the session negotiated under the 16-byte ID.
	LookupSession(id []byte) (*opt.Session, bool)
}

// IntentHandler reacts to an XIA intent reached at this node. Returning
// true means the intent was handled (e.g. content scheduled for serving);
// false falls back to plain local delivery.
type IntentHandler interface {
	HandleIntent(ctx *core.ExecContext, intent xia.XID) bool
}

// Config carries the node state the operation modules bind to. Only the
// fields needed by the FNs a node actually registers must be set.
type Config struct {
	// FIB32/FIB128 back F_32_match and F_128_match.
	FIB32  *fib.Table
	FIB128 *fib.Table
	// NameFIB, PIT and ContentStore back F_FIB and F_PIT. ContentStore may
	// be nil (no caching; the paper's prototype router "has no cached
	// data", footnote 2).
	NameFIB      *fib.Table
	PIT          *pit.Table[uint32]
	ContentStore *cs.Store[uint32]
	// TieredStore, when set, takes precedence over ContentStore: F_FIB and
	// F_PIT run against the two-tier (RAM + cold arena) hierarchy, with
	// cold hits parked in the PIT and satisfied by async re-injection.
	TieredStore *cs.Tiered[uint32]
	// Secret, MACKind, PrevLabel and HopIndex configure F_parm/F_MAC/F_mark.
	Secret    *drkey.SecretValue
	MACKind   opt.Kind
	PrevLabel [16]byte
	HopIndex  uint8
	// XIARoutes backs F_DAG; Intent handles F_intent (nil ⇒ deliver).
	XIARoutes xia.Resolver
	Intent    IntentHandler
	// Sessions backs the host-side F_ver.
	Sessions SessionStore
	// GuardKey backs F_pass.
	GuardKey [16]byte
	// RequirePass puts the node in content-poisoning defense posture:
	// F_PIT refuses to cache payloads that did not pass F_pass (§2.4).
	// Operators flip this on the fly by building a new registry with it
	// set and Router.ReplaceRegistry-ing it in.
	RequirePass bool
}

// NewRouterRegistry builds the dispatch table a DIP router advertises: all
// router-executable operations the config has state for. Operations whose
// dependencies are nil are skipped, modelling heterogeneous FN
// configurations across ASes (§2.4).
func NewRouterRegistry(cfg Config) *core.Registry {
	reg := core.NewRegistry()
	if cfg.FIB32 != nil {
		reg.MustRegister(NewMatch32(cfg.FIB32))
	}
	if cfg.FIB128 != nil {
		reg.MustRegister(NewMatch128(cfg.FIB128))
	}
	reg.MustRegister(NewSource())
	if cfg.NameFIB != nil && cfg.PIT != nil {
		switch {
		case cfg.TieredStore != nil:
			reg.MustRegister(NewTieredFIB(cfg.NameFIB, cfg.PIT, cfg.TieredStore))
			if cfg.RequirePass {
				reg.MustRegister(NewGuardedTieredPIT(cfg.PIT, cfg.TieredStore))
			} else {
				reg.MustRegister(NewTieredPIT(cfg.PIT, cfg.TieredStore))
			}
		case cfg.RequirePass:
			reg.MustRegister(NewFIB(cfg.NameFIB, cfg.PIT, cfg.ContentStore))
			reg.MustRegister(NewGuardedPIT(cfg.PIT, cfg.ContentStore))
		default:
			reg.MustRegister(NewFIB(cfg.NameFIB, cfg.PIT, cfg.ContentStore))
			reg.MustRegister(NewPIT(cfg.PIT, cfg.ContentStore))
		}
	}
	if cfg.Secret != nil {
		reg.MustRegister(
			NewParm(cfg.Secret, cfg.MACKind, cfg.PrevLabel, cfg.HopIndex),
			NewMAC(cfg.MACKind),
			NewMark(cfg.MACKind),
		)
		// Path authentication requires every on-path AS (§2.4): routers
		// that lack these must signal, so advertise that policy.
		reg.SetPolicy(core.KeyParm, core.PolicySignal)
		reg.SetPolicy(core.KeyMAC, core.PolicySignal)
		reg.SetPolicy(core.KeyMark, core.PolicySignal)
	}
	if cfg.XIARoutes != nil {
		reg.MustRegister(NewDAG(cfg.XIARoutes), NewIntent(cfg.Intent, cfg.XIARoutes))
	}
	reg.MustRegister(NewPass(&cfg.GuardKey))
	reg.MustRegister(NewCtl())
	return reg
}

// NewHostRegistry builds the dispatch table a host stack uses for the FNs
// tagged host-executed (currently F_ver).
func NewHostRegistry(cfg Config) *core.Registry {
	reg := core.NewRegistry()
	if cfg.Sessions != nil {
		reg.MustRegister(NewVer(cfg.Sessions))
	}
	return reg
}
