package ops

import (
	"errors"
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/fib"
	"dip/internal/pit"
)

// FIB is F_FIB (key 4): the content-name forwarding operation interest
// packets carry (paper §3, triple (loc: 0, len: 32, key: 4)). Per the NDN
// forwarding rules it folds three steps into one module:
//
//  1. content-store check (footnote 2: match the local store before the FIB),
//  2. FIB longest-prefix match on the 32-bit name to pick the egress,
//  3. PIT recording of the ingress port (with interest aggregation).
type FIB struct {
	fib   *fib.Table
	pit   *pit.Table[uint32]
	store *cs.Store[uint32] // nil disables caching
	// tiered, when set, layers a cold tier under the store: a hot miss
	// probes the cold index, and a cold hit parks the interest in the PIT
	// while an async reader fetches the slot — the forwarder never blocks
	// on disk.
	tiered *cs.Tiered[uint32]
}

// NewFIB builds the module. store may be nil.
func NewFIB(t *fib.Table, p *pit.Table[uint32], store *cs.Store[uint32]) *FIB {
	return &FIB{fib: t, pit: p, store: store}
}

// NewTieredFIB builds the module over a two-tier content store.
func NewTieredFIB(t *fib.Table, p *pit.Table[uint32], ts *cs.Tiered[uint32]) *FIB {
	return &FIB{fib: t, pit: p, store: ts.Hot(), tiered: ts}
}

// Key implements core.Operation.
func (o *FIB) Key() core.Key { return core.KeyFIB }

// Name implements core.Operation.
func (o *FIB) Name() string { return core.KeyFIB.String() }

// Execute implements core.Operation.
func (o *FIB) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits == 0 || bits > 32 {
		return fmt.Errorf("ops: F_FIB operand is %d bits, want 1..32", bits)
	}
	v, err := bitfield.Uint64(ctx.View.Locations(), loc, bits)
	if err != nil {
		return err
	}
	name := uint32(v) << (32 - bits)
	if o.tiered != nil {
		if data, ok := o.tiered.GetHot(name); ok {
			ctx.Cached = data
			ctx.Absorb()
			return nil
		}
	} else if o.store != nil {
		if data, ok := o.store.Get(name); ok {
			ctx.Cached = data
			ctx.Absorb()
			return nil
		}
	}
	// A cold hit means the content is on local disk: the interest parks in
	// the PIT exactly as for an upstream fetch, but no packet leaves the
	// router — the reader pool re-injects the data once the slot is read.
	// Like the hot tier, the cold tier is checked before the FIB (footnote
	// 2's ordering), so a cold hit is served even with no route.
	coldHit := o.tiered != nil && o.tiered.ColdContains(name)
	nh, ok := o.fib.LookupUint32(name)
	if !coldHit {
		if !ok {
			ctx.Drop(core.DropNoRoute)
			return nil
		}
		if nh.Port == fib.PortLocal {
			ctx.Deliver()
			return nil
		}
	}
	if !ctx.ChargeState(pit.EntryCost) {
		return nil // budget drop already recorded
	}
	created, err := o.pit.AddInterest(name, ctx.InPort)
	if err != nil {
		if errors.Is(err, pit.ErrFull) {
			ctx.Drop(core.DropStateBudget)
			return nil
		}
		if errors.Is(err, pit.ErrPortCap) {
			// One port at its flood cap sheds only its own interests; the
			// shared table stays available to everyone else.
			ctx.Drop(core.DropFlood)
			return nil
		}
		return err
	}
	if !created {
		ctx.Absorb() // aggregated onto a pending interest; do not forward
		return nil
	}
	if coldHit {
		if o.tiered.RequestCold(name) {
			ctx.Absorb() // parked; the async read will satisfy the PIT entry
			return nil
		}
		// The read was refused (pending table full, or the entry vanished
		// between probe and request): fall back to forwarding upstream when
		// a route exists. Without one the stale PIT entry is left for the
		// sweeper, the same end state as a lost upstream fetch.
		if !ok {
			ctx.Drop(core.DropNoRoute)
			return nil
		}
	}
	ctx.AddEgress(nh.Port)
	return nil
}

// PIT is F_PIT (key 5): the pending-interest match data packets carry
// (triple (loc: 0, len: 32, key: 5)). A hit replicates the packet to every
// recorded request port and optionally caches the payload; a miss discards
// the packet (paper §3).
type PIT struct {
	pit   *pit.Table[uint32]
	store *cs.Store[uint32] // nil disables caching
	// tiered, when set, routes cache inserts through the two-tier store so
	// stale cold slots are invalidated and hot evictions spill to disk.
	tiered *cs.Tiered[uint32]
	// requirePass gates cache insertion on a prior successful F_pass
	// check — the content-poisoning defense posture of §2.4.
	requirePass bool
}

// NewPIT builds the module. store may be nil.
func NewPIT(p *pit.Table[uint32], store *cs.Store[uint32]) *PIT {
	return &PIT{pit: p, store: store}
}

// NewTieredPIT builds the module over a two-tier content store.
func NewTieredPIT(p *pit.Table[uint32], ts *cs.Tiered[uint32]) *PIT {
	return &PIT{pit: p, store: ts.Hot(), tiered: ts}
}

// NewGuardedPIT builds the module in require-pass mode: payloads only
// enter the content store when the packet carried a valid F_pass label.
func NewGuardedPIT(p *pit.Table[uint32], store *cs.Store[uint32]) *PIT {
	return &PIT{pit: p, store: store, requirePass: true}
}

// NewGuardedTieredPIT is NewGuardedPIT over a two-tier content store.
func NewGuardedTieredPIT(p *pit.Table[uint32], ts *cs.Tiered[uint32]) *PIT {
	return &PIT{pit: p, store: ts.Hot(), tiered: ts, requirePass: true}
}

// Key implements core.Operation.
func (o *PIT) Key() core.Key { return core.KeyPIT }

// Name implements core.Operation.
func (o *PIT) Name() string { return core.KeyPIT.String() }

// Execute implements core.Operation.
func (o *PIT) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits == 0 || bits > 32 {
		return fmt.Errorf("ops: F_PIT operand is %d bits, want 1..32", bits)
	}
	v, err := bitfield.Uint64(ctx.View.Locations(), loc, bits)
	if err != nil {
		return err
	}
	name := uint32(v) << (32 - bits)
	var buf [pit.MaxPortsPerEntry]int
	ports, ok := o.pit.Consume(buf[:0], name)
	if !ok {
		ctx.Drop(core.DropPITMiss)
		return nil
	}
	for _, p := range ports {
		ctx.AddEgress(p)
	}
	if o.store != nil && (!o.requirePass || ctx.Passed) {
		payload := ctx.View.Payload()
		if ctx.ChargeState(len(payload)) {
			if o.tiered != nil {
				o.tiered.Put(name, payload)
			} else {
				o.store.Put(name, payload)
			}
		}
	}
	return nil
}
