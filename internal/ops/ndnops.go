package ops

import (
	"errors"
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/fib"
	"dip/internal/pit"
)

// FIB is F_FIB (key 4): the content-name forwarding operation interest
// packets carry (paper §3, triple (loc: 0, len: 32, key: 4)). Per the NDN
// forwarding rules it folds three steps into one module:
//
//  1. content-store check (footnote 2: match the local store before the FIB),
//  2. FIB longest-prefix match on the 32-bit name to pick the egress,
//  3. PIT recording of the ingress port (with interest aggregation).
type FIB struct {
	fib   *fib.Table
	pit   *pit.Table[uint32]
	store *cs.Store[uint32] // nil disables caching
}

// NewFIB builds the module. store may be nil.
func NewFIB(t *fib.Table, p *pit.Table[uint32], store *cs.Store[uint32]) *FIB {
	return &FIB{fib: t, pit: p, store: store}
}

// Key implements core.Operation.
func (o *FIB) Key() core.Key { return core.KeyFIB }

// Name implements core.Operation.
func (o *FIB) Name() string { return core.KeyFIB.String() }

// Execute implements core.Operation.
func (o *FIB) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits == 0 || bits > 32 {
		return fmt.Errorf("ops: F_FIB operand is %d bits, want 1..32", bits)
	}
	v, err := bitfield.Uint64(ctx.View.Locations(), loc, bits)
	if err != nil {
		return err
	}
	name := uint32(v) << (32 - bits)
	if o.store != nil {
		if data, ok := o.store.Get(name); ok {
			ctx.Cached = data
			ctx.Absorb()
			return nil
		}
	}
	nh, ok := o.fib.LookupUint32(name)
	if !ok {
		ctx.Drop(core.DropNoRoute)
		return nil
	}
	if nh.Port == fib.PortLocal {
		ctx.Deliver()
		return nil
	}
	if !ctx.ChargeState(pit.EntryCost) {
		return nil // budget drop already recorded
	}
	created, err := o.pit.AddInterest(name, ctx.InPort)
	if err != nil {
		if errors.Is(err, pit.ErrFull) {
			ctx.Drop(core.DropStateBudget)
			return nil
		}
		if errors.Is(err, pit.ErrPortCap) {
			// One port at its flood cap sheds only its own interests; the
			// shared table stays available to everyone else.
			ctx.Drop(core.DropFlood)
			return nil
		}
		return err
	}
	if !created {
		ctx.Absorb() // aggregated onto a pending interest; do not forward
		return nil
	}
	ctx.AddEgress(nh.Port)
	return nil
}

// PIT is F_PIT (key 5): the pending-interest match data packets carry
// (triple (loc: 0, len: 32, key: 5)). A hit replicates the packet to every
// recorded request port and optionally caches the payload; a miss discards
// the packet (paper §3).
type PIT struct {
	pit   *pit.Table[uint32]
	store *cs.Store[uint32] // nil disables caching
	// requirePass gates cache insertion on a prior successful F_pass
	// check — the content-poisoning defense posture of §2.4.
	requirePass bool
}

// NewPIT builds the module. store may be nil.
func NewPIT(p *pit.Table[uint32], store *cs.Store[uint32]) *PIT {
	return &PIT{pit: p, store: store}
}

// NewGuardedPIT builds the module in require-pass mode: payloads only
// enter the content store when the packet carried a valid F_pass label.
func NewGuardedPIT(p *pit.Table[uint32], store *cs.Store[uint32]) *PIT {
	return &PIT{pit: p, store: store, requirePass: true}
}

// Key implements core.Operation.
func (o *PIT) Key() core.Key { return core.KeyPIT }

// Name implements core.Operation.
func (o *PIT) Name() string { return core.KeyPIT.String() }

// Execute implements core.Operation.
func (o *PIT) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits == 0 || bits > 32 {
		return fmt.Errorf("ops: F_PIT operand is %d bits, want 1..32", bits)
	}
	v, err := bitfield.Uint64(ctx.View.Locations(), loc, bits)
	if err != nil {
		return err
	}
	name := uint32(v) << (32 - bits)
	var buf [pit.MaxPortsPerEntry]int
	ports, ok := o.pit.Consume(buf[:0], name)
	if !ok {
		ctx.Drop(core.DropPITMiss)
		return nil
	}
	for _, p := range ports {
		ctx.AddEgress(p)
	}
	if o.store != nil && (!o.requirePass || ctx.Passed) {
		payload := ctx.View.Payload()
		if ctx.ChargeState(len(payload)) {
			o.store.Put(name, payload)
		}
	}
	return nil
}
