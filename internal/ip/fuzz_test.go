package ip

import (
	"bytes"
	"testing"
)

// FuzzParse6: arbitrary bytes must never panic the IPv6 parser, and any
// accepted packet must expose internally consistent views (payload bounded
// by the declared length, hop-limit round trip through DecHopLimit). This
// closes the v6 half of the parser-fuzz gap; Parse4 is covered transitively
// by the tunnel FuzzDecap corpus that already caught a real total<ihl panic.
func FuzzParse6(f *testing.F) {
	var seed [HeaderLen6 + 8]byte
	if err := Build6(seed[:], [16]byte{0x20, 0x01}, [16]byte{0x20, 0x02}, ProtoDIP, 64, 8); err != nil {
		f.Fatal(err)
	}
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add([]byte{6 << 4})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderLen6))
	// Declared payload length larger than the buffer (truncation check).
	short := append([]byte(nil), seed[:HeaderLen6]...)
	short[4], short[5] = 0xFF, 0xFF
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Parse6(data)
		if err != nil {
			return
		}
		if h.Next() != data[6] {
			t.Fatalf("Next() = %d, want byte 6 = %d", h.Next(), data[6])
		}
		if len(h.Src()) != 16 || len(h.Dst()) != 16 {
			t.Fatalf("address views %d/%d bytes, want 16/16", len(h.Src()), len(h.Dst()))
		}
		p := h.Payload()
		if HeaderLen6+len(p) > len(data) {
			t.Fatalf("payload %d bytes overruns %d-byte packet", len(p), len(data))
		}
		before := h.HopLimit()
		if h.DecHopLimit() {
			if h.HopLimit() != before-1 {
				t.Fatalf("DecHopLimit: %d -> %d", before, h.HopLimit())
			}
		} else if before != 0 {
			t.Fatalf("DecHopLimit refused with hop limit %d", before)
		}
	})
}
