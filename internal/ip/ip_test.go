package ip

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"dip/internal/fib"
)

func build4(t *testing.T, src, dst [4]byte, ttl uint8, payload []byte) []byte {
	t.Helper()
	pkt := make([]byte, HeaderLen4+len(payload))
	if err := Build4(pkt, src, dst, ProtoUDP, ttl, len(payload)); err != nil {
		t.Fatal(err)
	}
	copy(pkt[HeaderLen4:], payload)
	return pkt
}

func TestBuildParse4(t *testing.T) {
	pkt := build4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 64, []byte("hello"))
	h, err := Parse4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.TTL() != 64 || h.Proto() != ProtoUDP {
		t.Errorf("ttl=%d proto=%d", h.TTL(), h.Proto())
	}
	if !bytes.Equal(h.Src(), []byte{10, 0, 0, 1}) || !bytes.Equal(h.Dst(), []byte{10, 0, 0, 2}) {
		t.Errorf("addrs %v %v", h.Src(), h.Dst())
	}
	if !bytes.Equal(h.Payload(), []byte("hello")) {
		t.Errorf("payload %q", h.Payload())
	}
}

func TestParse4Errors(t *testing.T) {
	if _, err := Parse4(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	pkt := build4(t, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 1, nil)
	bad := append([]byte(nil), pkt...)
	bad[0] = 6 << 4
	if _, err := Parse4(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}
	bad = append([]byte(nil), pkt...)
	bad[16] ^= 0xFF // corrupt dst without fixing checksum
	if _, err := Parse4(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("checksum: %v", err)
	}
	bad = append([]byte(nil), pkt...)
	binary.BigEndian.PutUint16(bad[2:4], uint16(len(bad)+10))
	if _, err := Parse4(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("total length: %v", err)
	}
	// Fuzz-found regression: total length smaller than the header must be
	// rejected, or Payload()'s slice bounds invert and panic.
	bad = append([]byte(nil), pkt...)
	binary.BigEndian.PutUint16(bad[2:4], 1)
	h, err := Parse4(bad)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("undersized total length: %v", err)
	}
	_ = h
}

// Property: the incremental checksum update on TTL decrement keeps the
// header checksum valid for any initial TTL.
func TestDecTTLChecksumQuick(t *testing.T) {
	f := func(ttl uint8, a, b [4]byte) bool {
		pkt := make([]byte, HeaderLen4)
		if err := Build4(pkt, a, b, ProtoUDP, ttl, 0); err != nil {
			return false
		}
		h, err := Parse4(pkt)
		if err != nil {
			return false
		}
		want := ttl > 0
		if got := h.DecTTL(); got != want {
			return false
		}
		if ttl == 0 {
			return true
		}
		// Re-parse: checksum must still verify and TTL must have dropped.
		h2, err := Parse4(pkt)
		return err == nil && h2.TTL() == ttl-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuild4Limits(t *testing.T) {
	if err := Build4(make([]byte, 10), [4]byte{}, [4]byte{}, 0, 1, 0); err == nil {
		t.Error("short dst accepted")
	}
	if err := Build4(make([]byte, HeaderLen4), [4]byte{}, [4]byte{}, 0, 1, 0x10000); err == nil {
		t.Error("oversize payload accepted")
	}
}

func TestBuildParse6(t *testing.T) {
	var src, dst [16]byte
	src[0], dst[0] = 0x20, 0x20
	dst[15] = 9
	pkt := make([]byte, HeaderLen6+3)
	if err := Build6(pkt, src, dst, ProtoUDP, 64, 3); err != nil {
		t.Fatal(err)
	}
	copy(pkt[HeaderLen6:], "abc")
	h, err := Parse6(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.HopLimit() != 64 || h.Next() != ProtoUDP {
		t.Errorf("hop=%d next=%d", h.HopLimit(), h.Next())
	}
	if !bytes.Equal(h.Dst(), dst[:]) || !bytes.Equal(h.Src(), src[:]) {
		t.Error("addresses")
	}
	if !bytes.Equal(h.Payload(), []byte("abc")) {
		t.Errorf("payload %q", h.Payload())
	}
	if !h.DecHopLimit() || h.HopLimit() != 63 {
		t.Error("DecHopLimit")
	}
	h.b[7] = 0
	if h.DecHopLimit() {
		t.Error("DecHopLimit at 0")
	}
}

func TestParse6Errors(t *testing.T) {
	if _, err := Parse6(make([]byte, 39)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	pkt := make([]byte, HeaderLen6)
	Build6(pkt, [16]byte{}, [16]byte{}, 0, 1, 0)
	pkt[0] = 4 << 4
	if _, err := Parse6(pkt); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}
	pkt[0] = 6 << 4
	binary.BigEndian.PutUint16(pkt[4:6], 100)
	if _, err := Parse6(pkt); !errors.Is(err, ErrTruncated) {
		t.Errorf("payload len: %v", err)
	}
}

func TestForwarder4(t *testing.T) {
	table := fib.New()
	table.Add([]byte{10, 0, 0, 0}, 8, fib.NextHop{Port: 2})
	table.Add([]byte{10, 0, 0, 2}, 32, fib.Local)
	fwd := &Forwarder4{FIB: table}

	pkt := build4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 9, 9, 9}, 64, nil)
	v, port := fwd.Process(pkt)
	if v != Forward || port != 2 {
		t.Errorf("got %v port %d", v, port)
	}
	h, err := Parse4(pkt) // checksum must still be valid post-forwarding
	if err != nil || h.TTL() != 63 {
		t.Errorf("post-forward parse: %v ttl=%d", err, h.TTL())
	}

	local := build4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 64, nil)
	if v, _ := fwd.Process(local); v != Deliver {
		t.Errorf("local got %v", v)
	}

	dead := build4(t, [4]byte{10, 0, 0, 1}, [4]byte{10, 9, 9, 9}, 0, nil)
	if v, _ := fwd.Process(dead); v != DropTTL {
		t.Errorf("ttl0 got %v", v)
	}

	lost := build4(t, [4]byte{10, 0, 0, 1}, [4]byte{99, 9, 9, 9}, 64, nil)
	if v, _ := fwd.Process(lost); v != DropNoRoute {
		t.Errorf("no-route got %v", v)
	}

	if v, _ := fwd.Process(make([]byte, 4)); v != DropMalformed {
		t.Error("malformed accepted")
	}
}

func TestForwarder6(t *testing.T) {
	table := fib.New()
	prefix := make([]byte, 16)
	prefix[0] = 0x20
	table.Add(prefix, 8, fib.NextHop{Port: 5})
	fwd := &Forwarder6{FIB: table}

	var src, dst [16]byte
	dst[0] = 0x20
	dst[1] = 0x01
	pkt := make([]byte, HeaderLen6)
	Build6(pkt, src, dst, 0, 64, 0)
	v, port := fwd.Process(pkt)
	if v != Forward || port != 5 {
		t.Errorf("got %v port %d", v, port)
	}
	var other [16]byte
	other[0] = 0x30
	Build6(pkt, src, other, 0, 64, 0)
	if v, _ := fwd.Process(pkt); v != DropNoRoute {
		t.Errorf("no-route got %v", v)
	}
}

func TestForwardersZeroAlloc(t *testing.T) {
	table := fib.New()
	table.Add([]byte{10, 0, 0, 0}, 8, fib.NextHop{Port: 2})
	fwd := &Forwarder4{FIB: table}
	pkt := build4(t, [4]byte{1, 2, 3, 4}, [4]byte{10, 0, 0, 9}, 200, nil)
	allocs := testing.AllocsPerRun(500, func() {
		fwd.Process(pkt)
	})
	if allocs != 0 {
		t.Errorf("IPv4 forwarding allocates %.1f", allocs)
	}
}
