// Package ip implements native IPv4 and IPv6 header processing and plain
// LPM forwarders. These are the baselines of the paper's Figure 2 ("the
// forwarding times of IPv4 and IPv6 packets are used as baselines") and the
// outer headers for tunneling DIP across legacy domains (§2.4).
//
// Parsing is in-place: a Header4/Header6 view aliases the packet buffer, and
// forwarding (TTL decrement + incremental checksum update for v4) mutates it
// directly, mirroring how the DIP fast path works.
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers used across the repository.
const (
	ProtoDIP      = 0xFD // experimental: DIP-in-IP tunneling
	ProtoDIPProbe = 0xFE // experimental: tunnel endpoint liveness probes
	ProtoUDP      = 17
)

// Header sizes (no IPv4 options: the forwarding prototype never emits them).
const (
	HeaderLen4 = 20
	HeaderLen6 = 40
)

// Errors from parsing.
var (
	ErrTruncated = errors.New("ip: truncated header")
	ErrVersion   = errors.New("ip: wrong IP version")
	ErrChecksum  = errors.New("ip: bad header checksum")
)

// Header4 is an in-place view of an IPv4 header without options.
type Header4 struct{ b []byte }

// Parse4 validates b as an IPv4 packet and returns a view over it.
func Parse4(b []byte) (Header4, error) {
	if len(b) < HeaderLen4 {
		return Header4{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return Header4{}, fmt.Errorf("%w: %d", ErrVersion, b[0]>>4)
	}
	ihl := int(b[0]&0xF) * 4
	if ihl != HeaderLen4 {
		return Header4{}, fmt.Errorf("%w: IHL %d unsupported", ErrVersion, ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total > len(b) {
		return Header4{}, fmt.Errorf("%w: total length %d > %d", ErrTruncated, total, len(b))
	}
	if total < ihl {
		// A total length shorter than the header would make Payload's
		// bounds invert (fuzz-found: Decap panicked on such packets).
		return Header4{}, fmt.Errorf("%w: total length %d < header %d", ErrTruncated, total, ihl)
	}
	if checksum(b[:HeaderLen4]) != 0 {
		return Header4{}, ErrChecksum
	}
	return Header4{b: b}, nil
}

// Build4 writes an IPv4 header into dst (≥ 20 bytes) for a packet whose
// payload (everything after the header) is payloadLen bytes.
func Build4(dst []byte, src, dstAddr [4]byte, proto uint8, ttl uint8, payloadLen int) error {
	if len(dst) < HeaderLen4 {
		return fmt.Errorf("%w: dst %d bytes", ErrTruncated, len(dst))
	}
	total := HeaderLen4 + payloadLen
	if total > 0xFFFF {
		return fmt.Errorf("ip: total length %d exceeds 65535", total)
	}
	dst[0] = 4<<4 | 5
	dst[1] = 0
	binary.BigEndian.PutUint16(dst[2:4], uint16(total))
	binary.BigEndian.PutUint16(dst[4:6], 0) // ID
	binary.BigEndian.PutUint16(dst[6:8], 0) // flags/frag
	dst[8] = ttl
	dst[9] = proto
	dst[10], dst[11] = 0, 0
	copy(dst[12:16], src[:])
	copy(dst[16:20], dstAddr[:])
	binary.BigEndian.PutUint16(dst[10:12], checksum(dst[:HeaderLen4]))
	return nil
}

// Accessors. All alias the underlying buffer.

// TTL returns the remaining hop budget.
func (h Header4) TTL() uint8 { return h.b[8] }

// Proto returns the payload protocol number.
func (h Header4) Proto() uint8 { return h.b[9] }

// Src returns the source address view.
func (h Header4) Src() []byte { return h.b[12:16] }

// Dst returns the destination address view.
func (h Header4) Dst() []byte { return h.b[16:20] }

// Payload returns the bytes after the header, bounded by the total length.
func (h Header4) Payload() []byte {
	total := int(binary.BigEndian.Uint16(h.b[2:4]))
	return h.b[HeaderLen4:total]
}

// DecTTL decrements the TTL with an incremental checksum fix-up (RFC 1624)
// and reports whether the packet may still be forwarded.
func (h Header4) DecTTL() bool {
	if h.b[8] == 0 {
		return false
	}
	h.b[8]--
	// Incremental update: TTL lives in the high byte of word 4.
	sum := uint32(^binary.BigEndian.Uint16(h.b[10:12]))
	sum += 0xFEFF // ^0x0100 as ones-complement subtraction of 0x0100
	sum = (sum & 0xFFFF) + sum>>16
	sum = (sum & 0xFFFF) + sum>>16
	binary.BigEndian.PutUint16(h.b[10:12], ^uint16(sum))
	return true
}

// checksum computes the RFC 791 ones-complement header checksum; over a
// header with a correct checksum field it yields zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Header6 is an in-place view of an IPv6 fixed header.
type Header6 struct{ b []byte }

// Parse6 validates b as an IPv6 packet and returns a view over it.
func Parse6(b []byte) (Header6, error) {
	if len(b) < HeaderLen6 {
		return Header6{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>4 != 6 {
		return Header6{}, fmt.Errorf("%w: %d", ErrVersion, b[0]>>4)
	}
	if HeaderLen6+int(binary.BigEndian.Uint16(b[4:6])) > len(b) {
		return Header6{}, fmt.Errorf("%w: payload length %d", ErrTruncated,
			binary.BigEndian.Uint16(b[4:6]))
	}
	return Header6{b: b}, nil
}

// Build6 writes an IPv6 header into dst (≥ 40 bytes).
func Build6(dst []byte, src, dstAddr [16]byte, next uint8, hopLimit uint8, payloadLen int) error {
	if len(dst) < HeaderLen6 {
		return fmt.Errorf("%w: dst %d bytes", ErrTruncated, len(dst))
	}
	if payloadLen > 0xFFFF {
		return fmt.Errorf("ip: payload length %d exceeds 65535", payloadLen)
	}
	dst[0] = 6 << 4
	dst[1], dst[2], dst[3] = 0, 0, 0
	binary.BigEndian.PutUint16(dst[4:6], uint16(payloadLen))
	dst[6] = next
	dst[7] = hopLimit
	copy(dst[8:24], src[:])
	copy(dst[24:40], dstAddr[:])
	return nil
}

// HopLimit returns the remaining hop budget.
func (h Header6) HopLimit() uint8 { return h.b[7] }

// Next returns the next-header protocol number.
func (h Header6) Next() uint8 { return h.b[6] }

// Src returns the source address view.
func (h Header6) Src() []byte { return h.b[8:24] }

// Dst returns the destination address view.
func (h Header6) Dst() []byte { return h.b[24:40] }

// Payload returns the bytes after the header, bounded by the payload length.
func (h Header6) Payload() []byte {
	n := int(binary.BigEndian.Uint16(h.b[4:6]))
	return h.b[HeaderLen6 : HeaderLen6+n]
}

// DecHopLimit decrements the hop limit and reports whether the packet may
// still be forwarded.
func (h Header6) DecHopLimit() bool {
	if h.b[7] == 0 {
		return false
	}
	h.b[7]--
	return true
}
