package ip

import "dip/internal/fib"

// Verdict is the outcome of native IP forwarding.
type Verdict uint8

// Native forwarding verdicts.
const (
	Forward Verdict = iota
	Deliver
	DropTTL
	DropNoRoute
	DropMalformed
)

// Forwarder4 is a plain IPv4 LPM forwarder: the Figure 2 IPv4 baseline.
type Forwarder4 struct {
	FIB *fib.Table
}

// Process parses pkt, applies TTL and LPM, and returns the verdict plus the
// egress port for Forward. It never allocates.
func (f *Forwarder4) Process(pkt []byte) (Verdict, int) {
	h, err := Parse4(pkt)
	if err != nil {
		return DropMalformed, 0
	}
	nh, ok := f.FIB.Lookup(h.Dst(), 32)
	if !ok {
		return DropNoRoute, 0
	}
	if nh.Port == fib.PortLocal {
		return Deliver, 0
	}
	if !h.DecTTL() {
		return DropTTL, 0
	}
	return Forward, nh.Port
}

// Forwarder6 is a plain IPv6 LPM forwarder: the Figure 2 IPv6 baseline.
type Forwarder6 struct {
	FIB *fib.Table
}

// Process parses pkt, applies hop limit and LPM, and returns the verdict
// plus the egress port for Forward. It never allocates.
func (f *Forwarder6) Process(pkt []byte) (Verdict, int) {
	h, err := Parse6(pkt)
	if err != nil {
		return DropMalformed, 0
	}
	nh, ok := f.FIB.Lookup(h.Dst(), 128)
	if !ok {
		return DropNoRoute, 0
	}
	if nh.Port == fib.PortLocal {
		return Deliver, 0
	}
	if !h.DecHopLimit() {
		return DropTTL, 0
	}
	return Forward, nh.Port
}
