package dissect

import (
	"bytes"
	"strings"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/opt"
	"dip/internal/profiles"
	"dip/internal/xia"
)

func render(t *testing.T, h *core.Header, payload []byte) string {
	t.Helper()
	pkt, err := h.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkt = append(pkt, payload...)
	var buf bytes.Buffer
	Packet(&buf, pkt)
	return buf.String()
}

func session(t *testing.T) *opt.Session {
	t.Helper()
	sv, _ := drkey.NewSecretValue("r", bytes.Repeat([]byte{1}, 16))
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{2}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, []opt.HopConfig{{Secret: sv}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestDissectIPv4Profile(t *testing.T) {
	out := render(t, profiles.IPv4([4]byte{1, 2, 3, 4}, [4]byte{10, 7, 8, 9}), []byte("pp"))
	for _, want := range []string{
		"DIP-32 (IPv4-style)",
		"F_32_match",
		"destination:  10.7.8.9",
		"payload (2 bytes)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDissectNDN(t *testing.T) {
	out := render(t, profiles.NDNInterest(0xAABBCCDD), nil)
	if !strings.Contains(out, "NDN interest") || !strings.Contains(out, "content name: 0xaabbccdd") {
		t.Errorf("got:\n%s", out)
	}
	out = render(t, profiles.NDNData(1), nil)
	if !strings.Contains(out, "NDN data") {
		t.Errorf("got:\n%s", out)
	}
}

func TestDissectOPTAndDerived(t *testing.T) {
	sess := session(t)
	h, err := profiles.OPT(sess, []byte("x"), 42)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, h, []byte("x"))
	for _, want := range []string{"— OPT", "session ID:", "1 validating hop(s), timestamp 42", "host"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	hd, _ := profiles.NDNOPTData(sess, 5, []byte("x"), 1)
	if out := render(t, hd, []byte("x")); !strings.Contains(out, "NDN+OPT data") {
		t.Errorf("got:\n%s", out)
	}
	hi, _ := profiles.NDNOPTInterest(sess, 5, 1)
	if out := render(t, hi, nil); !strings.Contains(out, "NDN+OPT interest") {
		t.Errorf("got:\n%s", out)
	}
}

func TestDissectXIA(t *testing.T) {
	dag := &xia.DAG{
		SrcEdges: []int{1, 0},
		Nodes: []xia.Node{
			{XID: xia.NewXID(xia.TypeAD, []byte("a")), Edges: []int{1}},
			{XID: xia.NewXID(xia.TypeCID, []byte("c"))},
		},
	}
	h, err := profiles.XIA(dag)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, h, nil)
	if !strings.Contains(out, "— XIA") || !strings.Contains(out, "2 nodes, intent CID:") {
		t.Errorf("got:\n%s", out)
	}
	sess := session(t)
	ho, err := profiles.XIAOPT(dag, sess, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out := render(t, ho, nil); !strings.Contains(out, "XIA+OPT (derived protocol)") {
		t.Errorf("got:\n%s", out)
	}
}

func TestDissectFNUnsupported(t *testing.T) {
	msg, err := profiles.BuildFNUnsupported([]byte{10, 0, 0, 1}, core.KeyMAC)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Packet(&buf, msg)
	out := buf.String()
	if !strings.Contains(out, "FN-unsupported notification") || !strings.Contains(out, "unsupported operation: F_MAC") {
		t.Errorf("got:\n%s", out)
	}
}

func TestDissectGarbage(t *testing.T) {
	var buf bytes.Buffer
	Packet(&buf, []byte{1, 2, 3})
	if !strings.Contains(buf.String(), "not a DIP packet") {
		t.Errorf("got:\n%s", buf.String())
	}
	// Unknown composition.
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 8, 99)},
		Locations: make([]byte, 1),
	}
	var buf2 bytes.Buffer
	pkt, _ := h.AppendTo(nil)
	Packet(&buf2, pkt)
	if !strings.Contains(buf2.String(), "custom composition") {
		t.Errorf("got:\n%s", buf2.String())
	}
	// Bare DIP and reserved bits.
	h2 := &core.Header{Reserved: 0x1F}
	var buf3 bytes.Buffer
	pkt2, _ := h2.AppendTo(nil)
	Packet(&buf3, pkt2)
	if !strings.Contains(buf3.String(), "bare DIP") || !strings.Contains(buf3.String(), "reserved:    0x1f") {
		t.Errorf("got:\n%s", buf3.String())
	}
}
