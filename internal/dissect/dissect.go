// Package dissect renders DIP packets for humans: the basic header, every
// FN triple in the paper's notation, recognizable §3 profile shapes, and
// hex dumps of the operand region and payload. cmd/dipdump is a thin shell
// around it.
package dissect

import (
	"encoding/binary"
	"fmt"
	"io"

	"dip/internal/core"
	"dip/internal/opt"
	"dip/internal/profiles"
	"dip/internal/xia"
)

// Packet writes a full dissection of pkt to w. Unparseable packets are
// reported, not errors — dissectors see garbage for a living.
func Packet(w io.Writer, pkt []byte) {
	v, err := core.ParseView(pkt)
	if err != nil {
		fmt.Fprintf(w, "not a DIP packet (%v); %d raw bytes\n", err, len(pkt))
		hexDump(w, pkt, "  ")
		return
	}
	fmt.Fprintf(w, "DIP packet, %d bytes (header %d, payload %d) — %s\n",
		len(pkt), v.HeaderLen(), len(v.Payload()), Profile(v))
	fmt.Fprintf(w, "  next header: %d", v.NextHeader())
	if v.NextHeader() == profiles.NHFNUnsupported {
		fmt.Fprint(w, " (FN-unsupported notification)")
	}
	fmt.Fprintf(w, "\n  hop limit:   %d\n", v.HopLimit())
	fmt.Fprintf(w, "  parallel:    %v\n", v.Parallel())
	if r := v.Reserved(); r != 0 {
		fmt.Fprintf(w, "  reserved:    %#x\n", r)
	}
	fmt.Fprintf(w, "  FN number:   %d\n", v.FNNum())
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		who := "router"
		if fn.Host {
			who = "host"
		}
		fmt.Fprintf(w, "  FN[%d]: %-40s %s\n", i, fn, who)
	}
	describeOperands(w, v)
	fmt.Fprintf(w, "  FN locations (%d bytes):\n", len(v.Locations()))
	hexDump(w, v.Locations(), "    ")
	if key, ok := profiles.ParseFNUnsupported(v); ok {
		fmt.Fprintf(w, "  unsupported operation: %s\n", key)
	} else if len(v.Payload()) > 0 {
		fmt.Fprintf(w, "  payload (%d bytes):\n", len(v.Payload()))
		hexDump(w, v.Payload(), "    ")
	}
}

// Profile names the §3 composition the FN list matches, or "custom".
func Profile(v core.View) string {
	keys := make([]core.Key, v.FNNum())
	hosts := 0
	for i := range keys {
		fn := v.FN(i)
		keys[i] = fn.Key
		if fn.Host {
			hosts++
		}
	}
	has := func(k core.Key) bool {
		for _, x := range keys {
			if x == k {
				return true
			}
		}
		return false
	}
	optish := has(core.KeyParm) && has(core.KeyMAC) && has(core.KeyMark)
	switch {
	case optish && has(core.KeyFIB):
		return "NDN+OPT interest (derived protocol)"
	case optish && has(core.KeyPIT):
		return "NDN+OPT data (derived protocol)"
	case optish && has(core.KeyDAG):
		return "XIA+OPT (derived protocol)"
	case optish:
		return "OPT"
	case has(core.KeyDAG):
		return "XIA"
	case has(core.KeyFIB):
		return "NDN interest"
	case has(core.KeyPIT):
		return "NDN data"
	case has(core.KeyMatch32) && has(core.KeySource) && v.FNNum() == 2:
		return "DIP-32 (IPv4-style)"
	case has(core.KeyMatch128) && has(core.KeySource) && v.FNNum() == 2:
		return "DIP-128 (IPv6-style)"
	case v.FNNum() == 0:
		return "bare DIP"
	}
	return "custom composition"
}

// describeOperands decodes well-known operand structures.
func describeOperands(w io.Writer, v core.View) {
	locs := v.Locations()
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Loc%8 != 0 {
			continue
		}
		off := int(fn.Loc) / 8
		switch fn.Key {
		case core.KeyFIB, core.KeyPIT:
			if fn.Len == 32 && off+4 <= len(locs) {
				fmt.Fprintf(w, "  content name: %#08x\n", binary.BigEndian.Uint32(locs[off:]))
			}
		case core.KeyMatch32:
			if fn.Len == 32 && off+4 <= len(locs) {
				b := locs[off:]
				fmt.Fprintf(w, "  destination:  %d.%d.%d.%d\n", b[0], b[1], b[2], b[3])
			}
		case core.KeyParm:
			if fn.Len == 128 && off+16 <= len(locs) {
				fmt.Fprintf(w, "  session ID:   %x…\n", locs[off:off+4])
			}
		case core.KeyVer:
			if int(fn.Len)%8 == 0 && off+int(fn.Len)/8 <= len(locs) {
				region := locs[off : off+int(fn.Len)/8]
				if r, err := opt.AsRegion(region); err == nil {
					fmt.Fprintf(w, "  OPT region:   %d validating hop(s), timestamp %d\n",
						r.Hops(), binary.BigEndian.Uint32(r.Timestamp()))
				}
			}
		case core.KeyDAG:
			if int(fn.Len)%8 == 0 && off+int(fn.Len)/8 <= len(locs) {
				if dag, last, _, err := xia.Decode(locs[off : off+int(fn.Len)/8]); err == nil {
					fmt.Fprintf(w, "  XIA address:  %d nodes, intent %v, lastVisited %d\n",
						len(dag.Nodes), dag.Intent(), last)
				}
			}
		}
	}
}

func hexDump(w io.Writer, b []byte, indent string) {
	const width = 16
	for off := 0; off < len(b); off += width {
		end := off + width
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(w, "%s%04x  % x\n", indent, off, b[off:end])
	}
}
