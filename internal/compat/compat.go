// Package compat implements the backward-compatibility translation of
// paper §2.4: "the existing network protocol header can be viewed as an FN
// location in the DIP … the border router can remove the basic header and
// FN definitions, so that the packet is routed only based on the FN
// operations that are recognized by the legacy devices. Similarly, to
// process packets from a legacy domain, the inbound border router needs to
// add back the DIP basic header and FN definitions."
//
// Concretely: a DIP host talking to an IPv6 destination composes a DIP
// header whose FN-locations region is a literal IPv6 header. The outbound
// border router strips the DIP framing, leaving a native IPv6 packet that
// legacy routers forward; the inbound border router re-wraps native IPv6
// into the canonical DIP-over-IPv6 composition.
package compat

import (
	"errors"
	"fmt"

	"dip/internal/core"
	"dip/internal/ip"
)

// ErrNotCompat reports a packet that is not a DIP-over-IPv6 composition.
var ErrNotCompat = errors.New("compat: not a DIP-over-IPv6 packet")

// IPv6 field offsets within the embedded header, in bits: the FN triples
// below address the destination and source fields of the raw IPv6 header
// sitting at locations offset 0.
const (
	dstFieldLoc = 24 * 8 // IPv6 destination at byte 24
	srcFieldLoc = 8 * 8  // IPv6 source at byte 8
)

// WrapIPv6 builds the DIP composition for a native IPv6 packet: the whole
// 40-byte IPv6 header becomes the FN-locations region, with F_128_match
// aimed at its destination field and F_source at its source field. This is
// what a DIP host (or an inbound border router) emits.
func WrapIPv6(ipv6Pkt []byte) ([]byte, error) {
	h6, err := ip.Parse6(ipv6Pkt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotCompat, err)
	}
	h := &core.Header{
		NextHeader: h6.Next(),
		HopLimit:   h6.HopLimit(),
		FNs: []core.FN{
			core.RouterFN(dstFieldLoc, 128, core.KeyMatch128),
			core.RouterFN(srcFieldLoc, 128, core.KeySource),
		},
		Locations: ipv6Pkt[:ip.HeaderLen6],
	}
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(ipv6Pkt)-ip.HeaderLen6))
	if err != nil {
		return nil, err
	}
	return append(buf, ipv6Pkt[ip.HeaderLen6:]...), nil
}

// UnwrapIPv6 strips the DIP basic header and FN definitions from a
// DIP-over-IPv6 composition, returning the native IPv6 packet a legacy
// domain can route. The embedded header's hop limit is synchronized with
// the DIP hop limit so the legacy domain sees remaining budget.
func UnwrapIPv6(dipPkt []byte) ([]byte, error) {
	v, err := core.ParseView(dipPkt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotCompat, err)
	}
	if !IsIPv6Composition(v) {
		return nil, ErrNotCompat
	}
	locs := v.Locations()
	out := make([]byte, 0, len(locs)+len(v.Payload()))
	out = append(out, locs...)
	out = append(out, v.Payload()...)
	// Synchronize the legacy hop limit with the DIP hop budget.
	out[7] = v.HopLimit()
	if _, err := ip.Parse6(out); err != nil {
		return nil, fmt.Errorf("%w: embedded header invalid: %v", ErrNotCompat, err)
	}
	return out, nil
}

// IsIPv6Composition reports whether a parsed DIP packet carries a whole
// IPv6 header as its FN-locations region with the canonical match/source
// triples.
func IsIPv6Composition(v core.View) bool {
	if len(v.Locations()) < ip.HeaderLen6 || v.FNNum() < 2 {
		return false
	}
	m, s := v.FN(0), v.FN(1)
	return m.Key == core.KeyMatch128 && m.Loc == dstFieldLoc && m.Len == 128 &&
		s.Key == core.KeySource && s.Loc == srcFieldLoc && s.Len == 128 &&
		v.Locations()[0]>>4 == 6
}
