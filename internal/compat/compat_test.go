package compat

import (
	"bytes"
	"errors"
	"testing"

	"dip/internal/core"
	"dip/internal/fib"
	"dip/internal/host"
	"dip/internal/ip"
	"dip/internal/ops"
	"dip/internal/profiles"
	"dip/internal/router"
)

func nativeIPv6(t *testing.T, hop uint8, payload []byte) []byte {
	t.Helper()
	var src, dst [16]byte
	src[0], dst[0] = 0xFD, 0x20
	dst[15] = 1
	pkt := make([]byte, ip.HeaderLen6+len(payload))
	if err := ip.Build6(pkt, src, dst, ip.ProtoUDP, hop, len(payload)); err != nil {
		t.Fatal(err)
	}
	copy(pkt[ip.HeaderLen6:], payload)
	return pkt
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	orig := nativeIPv6(t, 33, []byte("legacy payload"))
	wrapped, err := WrapIPv6(orig)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.ParseView(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIPv6Composition(v) {
		t.Fatal("composition not recognized")
	}
	if v.HopLimit() != 33 || v.NextHeader() != ip.ProtoUDP {
		t.Errorf("hop %d next %d", v.HopLimit(), v.NextHeader())
	}
	unwrapped, err := UnwrapIPv6(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unwrapped, orig) {
		t.Errorf("round trip mismatch:\n% x\n% x", unwrapped, orig)
	}
}

func TestUnwrapSynchronizesHopLimit(t *testing.T) {
	orig := nativeIPv6(t, 33, nil)
	wrapped, _ := WrapIPv6(orig)
	v, _ := core.ParseView(wrapped)
	v.SetHopLimit(7) // DIP domain consumed hops
	unwrapped, err := UnwrapIPv6(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	h6, _ := ip.Parse6(unwrapped)
	if h6.HopLimit() != 7 {
		t.Errorf("legacy hop limit %d, want 7", h6.HopLimit())
	}
}

func TestWrapRejectsJunk(t *testing.T) {
	if _, err := WrapIPv6([]byte{1, 2}); !errors.Is(err, ErrNotCompat) {
		t.Errorf("short: %v", err)
	}
	v4 := make([]byte, ip.HeaderLen4)
	ip.Build4(v4, [4]byte{}, [4]byte{}, 0, 1, 0)
	if _, err := WrapIPv6(v4); !errors.Is(err, ErrNotCompat) {
		t.Errorf("v4: %v", err)
	}
}

func TestUnwrapRejectsNonComposition(t *testing.T) {
	if _, err := UnwrapIPv6([]byte{1}); !errors.Is(err, ErrNotCompat) {
		t.Errorf("junk: %v", err)
	}
	b, _ := host.BuildPacket(profiles.NDNInterest(1), nil)
	if _, err := UnwrapIPv6(b); !errors.Is(err, ErrNotCompat) {
		t.Errorf("NDN packet: %v", err)
	}
	// A DIP-128 packet (addresses only, not a whole IPv6 header).
	b, _ = host.BuildPacket(profiles.IPv6([16]byte{}, [16]byte{}), nil)
	if _, err := UnwrapIPv6(b); !errors.Is(err, ErrNotCompat) {
		t.Errorf("DIP-128: %v", err)
	}
}

// A DIP router forwards the wrapped composition using its ordinary
// F_128_match module aimed into the embedded IPv6 header — no special
// compat code on the forwarding path.
func TestWrappedPacketForwardsThroughDIPRouter(t *testing.T) {
	cfg := ops.Config{FIB128: fib.New()}
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	cfg.FIB128.Add(pfx, 8, fib.NextHop{Port: 1})
	r := router.New(ops.NewRouterRegistry(cfg), router.Config{})
	var got []byte
	r.AttachPort(router.PortFunc(func([]byte) {}))
	r.AttachPort(router.PortFunc(func(p []byte) { got = append([]byte(nil), p...) }))

	wrapped, err := WrapIPv6(nativeIPv6(t, 9, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(wrapped, 0)
	if got == nil {
		t.Fatal("not forwarded")
	}
	v, _ := core.ParseView(got)
	if v.HopLimit() != 8 {
		t.Errorf("hop limit %d", v.HopLimit())
	}
	// Border router at the egress edge can hand it to the legacy domain.
	native, err := UnwrapIPv6(got)
	if err != nil {
		t.Fatal(err)
	}
	h6, err := ip.Parse6(native)
	if err != nil || h6.HopLimit() != 8 {
		t.Errorf("unwrapped: %v hop %d", err, h6.HopLimit())
	}
}
