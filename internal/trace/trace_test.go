package trace

import (
	"strings"
	"sync"
	"testing"

	"dip/internal/core"
	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

// buildIPv4 returns a parsed IPv4-profile packet and its engine-ready view.
func buildIPv4(t *testing.T) []byte {
	t.Helper()
	h := profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9})
	pkt, err := h.AppendTo(make([]byte, 0, h.WireSize()))
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func routerEngine(t *testing.T, rec core.Recorder) *core.Engine {
	t.Helper()
	cfg := ops.Config{FIB32: fib32(t)}
	e := core.NewEngine(ops.NewRouterRegistry(cfg), core.Limits{})
	e.SetRecorder(rec)
	return e
}

func process(t *testing.T, e *core.Engine, pkt []byte) core.ExecContext {
	t.Helper()
	pkt[3] = 64 // re-arm hop limit across runs
	v, err := core.ParseView(pkt)
	if err != nil {
		t.Fatal(err)
	}
	var ctx core.ExecContext
	ctx.Reset(v, 3)
	e.Process(&ctx)
	return ctx
}

func TestEveryPacketSampled(t *testing.T) {
	m := &telemetry.Metrics{}
	r := NewRecorder(m, 1, 8)
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	for i := 0; i < 5; i++ {
		process(t, e, pkt)
	}
	if got := r.Sampled(); got != 5 {
		t.Fatalf("sampled %d, want 5", got)
	}
	recs := r.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("snapshot has %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		if rec.InPort != 3 {
			t.Errorf("in-port %d, want 3", rec.InPort)
		}
		if rec.Verdict != core.VerdictForward {
			t.Errorf("verdict %v, want forward", rec.Verdict)
		}
		if rec.NSteps == 0 {
			t.Error("no steps recorded")
		}
		if rec.Steps[0].Key != core.KeyMatch32 {
			t.Errorf("first step %v, want F_32_match", rec.Steps[0].Key)
		}
		if rec.NEgr != 1 || rec.Egress[0] != 1 {
			t.Errorf("egress %v[:%d], want [1]", rec.Egress, rec.NEgr)
		}
		if int(rec.PktLen) != len(buildIPv4(t)) || int(rec.PktTotal) != len(buildIPv4(t)) {
			t.Errorf("capture %d/%d bytes, want full %d-byte packet", rec.PktLen, rec.PktTotal, len(buildIPv4(t)))
		}
	}
	// The aggregate recorder saw every op even though only samples ring.
	if s := m.Snapshot(); len(s.Ops) == 0 {
		t.Error("inner metrics recorded nothing")
	}
}

func TestSamplingDivisor(t *testing.T) {
	r := NewRecorder(nil, 10, 64)
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	const n = 200
	// One reused context, as in the pooled dataplane: stripes select by
	// context address, so a stable address means one stripe and an exact
	// 1-in-10 count (fresh contexts per packet would scatter the counters).
	var ctx core.ExecContext
	for i := 0; i < n; i++ {
		pkt[3] = 64
		v, err := core.ParseView(pkt)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 3)
		e.Process(&ctx)
	}
	if got := r.Sampled(); got != n/10 {
		t.Fatalf("sampled %d of %d at 1-in-10, want %d", got, n, n/10)
	}
	if seen := r.Seen(); seen != n {
		t.Fatalf("seen %d, want %d", seen, n)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRecorder(nil, 1, 4)
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	for i := 0; i < 10; i++ {
		process(t, e, pkt)
	}
	if got := r.Overwritten(); got != 6 {
		t.Fatalf("overwritten %d, want 6", got)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	if recs[0].Seq != 6 || recs[3].Seq != 9 {
		t.Fatalf("ring retains seqs %d..%d, want 6..9", recs[0].Seq, recs[3].Seq)
	}
}

func TestDropReasonTraced(t *testing.T) {
	r := NewRecorder(nil, 1, 8)
	// No route for the destination → no-route drop.
	cfg := ops.Config{FIB32: emptyFIB(t)}
	e := core.NewEngine(ops.NewRouterRegistry(cfg), core.Limits{})
	e.SetRecorder(r)
	pkt := buildIPv4(t)
	process(t, e, pkt)
	recs := r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	if recs[0].Verdict != core.VerdictDrop || recs[0].Reason != core.DropNoRoute {
		t.Fatalf("traced %v/%v, want drop/no-route", recs[0].Verdict, recs[0].Reason)
	}
}

func TestRecordStringDumpFormat(t *testing.T) {
	r := NewRecorder(nil, 1, 8)
	e := routerEngine(t, r)
	process(t, e, buildIPv4(t))
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump of one record has %d lines, want metadata + hex:\n%s", len(lines), out)
	}
	for _, want := range []string{"# trace seq=0", "verdict=forward", "in=3", "steps=", "F_32_match:", "egress=1"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("metadata line missing %q: %s", want, lines[0])
		}
	}
	if strings.ContainsAny(lines[1], "# ") || len(lines[1])%2 != 0 {
		t.Errorf("second line is not bare hex: %q", lines[1])
	}
}

func TestConcurrentSampling(t *testing.T) {
	r := NewRecorder(&telemetry.Metrics{}, 2, 256)
	e := routerEngine(t, r)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	base := buildIPv4(t)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkt := append([]byte(nil), base...)
			v, err := core.ParseView(pkt)
			if err != nil {
				panic(err)
			}
			var ctx core.ExecContext
			for i := 0; i < per; i++ {
				pkt[3] = 64
				ctx.Reset(v, 0)
				e.Process(&ctx)
			}
		}()
	}
	wg.Wait()
	if seen := r.Seen(); seen != workers*per {
		t.Fatalf("seen %d, want %d", seen, workers*per)
	}
	// Striped counters sample per stripe, so the global rate is approximate;
	// with a worker count far below the per-stripe period it stays near 1/2.
	sampled := r.Sampled()
	if sampled < workers*per/4 || sampled > workers*per {
		t.Fatalf("sampled %d of %d at 1-in-2: striping broke the rate", sampled, workers*per)
	}
	// Every stable snapshot record is internally consistent.
	for _, rec := range r.Snapshot() {
		if rec.Verdict != core.VerdictForward || rec.NSteps == 0 {
			t.Fatalf("torn record: %+v", rec)
		}
	}
}

// TestUnsampledZeroAlloc pins the contract the whole design hangs on: with
// tracing installed and sampling enabled, the unsampled path allocates
// nothing. (The sampled path is also allocation-free; the root
// zeroalloc_test covers the mixed case end to end.)
func TestUnsampledZeroAlloc(t *testing.T) {
	r := NewRecorder(&telemetry.Metrics{}, 1<<30, 8) // effectively never samples
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	v, err := core.ParseView(pkt)
	if err != nil {
		t.Fatal(err)
	}
	var ctx core.ExecContext
	run := func() {
		pkt[3] = 64
		ctx.Reset(v, 0)
		e.Process(&ctx)
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("unsampled traced path allocates %.1f/op, want 0", n)
	}
}

func TestSampledZeroAlloc(t *testing.T) {
	r := NewRecorder(&telemetry.Metrics{}, 1, 64) // sample every packet
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	v, err := core.ParseView(pkt)
	if err != nil {
		t.Fatal(err)
	}
	var ctx core.ExecContext
	run := func() {
		pkt[3] = 64
		ctx.Reset(v, 0)
		e.Process(&ctx)
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("sampled trace path allocates %.1f/op, want 0", n)
	}
}

func fib32(t *testing.T) *fib.Table {
	t.Helper()
	f := fib.New()
	if err := f.AddUint32(0x0A000000, 8, fib.NextHop{Port: 1}); err != nil {
		t.Fatal(err)
	}
	return f
}

func emptyFIB(t *testing.T) *fib.Table {
	t.Helper()
	return fib.New()
}

// TestCaptureStampOrdering pins the export-ordering contract: every record
// carries a dense Seq and an At stamp from the recorder's clock, so rings
// from several routers merge into one correctly ordered stream by (At, Seq).
func TestCaptureStampOrdering(t *testing.T) {
	var vclock int64
	r := NewRecorder(nil, 1, 8)
	r.SetClock(func() int64 { vclock += 100; return vclock })
	e := routerEngine(t, r)
	pkt := buildIPv4(t)
	for i := 0; i < 4; i++ {
		process(t, e, pkt)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has Seq=%d, want dense sequence", i, rec.Seq)
		}
		if i > 0 && recs[i].At <= recs[i-1].At {
			t.Fatalf("At not increasing on the virtual clock: %d then %d",
				recs[i-1].At, recs[i].At)
		}
	}
	if !strings.Contains(recs[0].String(), " at=") {
		t.Fatalf("Record.String missing the at= stamp: %s", recs[0].String())
	}
}
