// Package trace records sampled per-packet FN journeys — the "what
// happened to this packet" half of the paper's efficient-network-telemetry
// opportunity (§5) that aggregate counters cannot answer. Because every
// protocol in DIP decomposes into the same FN primitive, one instrumentation
// point inside the engine sees IPv4 forwarding, NDN interest aggregation and
// OPT validation alike: a trace record is the ordered list of FN keys the
// packet executed, each with its latency, plus the verdict, drop reason,
// chosen egress ports, and a prefix of the packet bytes for offline
// dissection (dipdump).
//
// The design constraint is the PR-3 zero-alloc forwarding baseline: tracing
// must ride the hot path without serializing or allocating on it.
//
//   - Sampling is 1-in-N on striped, cache-line-padded counters (selected by
//     the execution context's address, a stable per-worker value for pooled
//     contexts), so concurrent forwarding goroutines do not contend on one
//     atomic. The unsampled path is one counter increment and a comparison.
//   - Sampled packets write in place into a fixed-size ring of preallocated
//     records guarded by per-slot sequence locks: a writer bumps the slot's
//     version to odd, fills it, and bumps it to even; readers copy and
//     retry/skip on version change. No mutexes, no heap traffic, ever.
//   - Ring overwrite is the drop policy: the newest MaxInFlight packets win,
//     and the Overwritten counter makes the loss observable (exported as
//     dip_trace_overwritten_total).
//
// The ring must be comfortably larger than the number of concurrently
// sampled packets (workers / N per tick); with the default 1024 slots and
// 1-in-N sampling this holds by orders of magnitude.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
	"unsafe"

	"dip/internal/core"
)

// MaxSteps bounds the FN steps retained per record; packets executing more
// (the wire allows up to 255) keep the first MaxSteps and count the rest in
// Truncated.
const MaxSteps = 32

// CaptureBytes is the packet prefix captured per record — enough for the
// basic header, a realistic FN list and the locations region, so dipdump
// can dissect the journey's packet offline.
const CaptureBytes = 96

// DefaultRing is the ring size used when NewRecorder is given n < 1.
const DefaultRing = 1024

// DefaultEvery is the sampling divisor used when NewRecorder is given
// every < 1.
const DefaultEvery = 1024

// Step is one executed FN inside a sampled packet's journey.
type Step struct {
	Key core.Key
	Ns  int64
}

// Record is one sampled packet's journey. Egress mirrors the context's
// replication bound (maxEgress = 8).
type Record struct {
	// Seq is the global sample sequence number (dense, starts at 0). It is
	// this recorder's monotonic capture sequence: records from one router
	// always sort correctly by Seq regardless of clock quality.
	Seq uint64
	// At is the capture timestamp on the recorder's clock: wall nanoseconds
	// by default, or the shared virtual clock when SetClock installs one.
	// Stitching records from several routers sorts by (At, Seq); with a
	// shared clock that order is exact even when the routers' wall clocks
	// diverge, which per-router wall stamps cannot guarantee.
	At int64
	// InPort is the ingress port the packet arrived on.
	InPort int32
	// Verdict and Reason are the packet's final fate.
	Verdict core.Verdict
	Reason  core.DropReason
	// Steps[:NSteps] are the FNs executed, in order for sequential
	// processing; parallel-wave steps appear in completion order.
	Steps  [MaxSteps]Step
	NSteps uint8
	// Truncated counts steps beyond MaxSteps that were executed but not
	// retained.
	Truncated uint8
	// Egress[:NEgr] are the chosen output ports.
	Egress [8]int32
	NEgr   uint8
	// TotalNs is the wall-clock begin→end bracket around Algorithm 1.
	TotalNs int64
	// Pkt[:PktLen] is the captured packet prefix; PktTotal is the full
	// packet length on the wire.
	Pkt      [CaptureBytes]byte
	PktLen   uint8
	PktTotal uint16
}

// slot is one ring entry: a record plus its sequence lock and the atomic
// step cursor writers claim slots in (parallel waves execute FNs of one
// packet concurrently).
type slot struct {
	ver   atomic.Uint64 // odd = being written
	steps atomic.Int32  // claimed step count (may exceed MaxSteps)
	start int64         // begin bracket, ns since an arbitrary epoch
	rec   Record
}

// Step implements core.TraceSink.
func (s *slot) Step(k core.Key, d time.Duration) {
	i := s.steps.Add(1) - 1
	if int(i) < MaxSteps {
		s.rec.Steps[i] = Step{Key: k, Ns: d.Nanoseconds()}
	}
}

// stripes is the sampling-counter stripe count (power of two). Contexts
// hash onto stripes by address; pooled contexts keep their address for
// their lifetime, so a steady worker set spreads stably.
const stripes = 16

type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte // pad to a cache line so stripes do not false-share
}

// Recorder samples 1-in-every packets into a lock-free ring and forwards
// all aggregate telemetry to the wrapped inner recorder (typically a
// *telemetry.Metrics). It implements core.PacketRecorder; install it with
// Engine.SetRecorder (or router.Config.Trace).
type Recorder struct {
	inner   core.Recorder
	every   uint64
	mask    uint64
	slots   []slot
	seq     atomic.Uint64 // next sample sequence number
	counter [stripes]paddedCounter
	// clock stamps Record.At; nil means wall time. Set before traffic flows
	// (SetClock), so the hot path reads it without synchronization.
	clock func() int64
}

// NewRecorder builds a sampling trace recorder: every-th packet is traced
// (1 traces everything), ring is the record capacity (rounded up to a power
// of two; < 1 uses DefaultRing). inner, when non-nil, receives every
// RecordOp/RecordDrop exactly as if it were installed directly.
func NewRecorder(inner core.Recorder, every int, ring int) *Recorder {
	if every < 1 {
		every = DefaultEvery
	}
	if ring < 1 {
		ring = DefaultRing
	}
	size := 1
	for size < ring {
		size <<= 1
	}
	return &Recorder{
		inner: inner,
		every: uint64(every),
		mask:  uint64(size - 1),
		slots: make([]slot, size),
	}
}

// SetClock installs the capture-timestamp source (nanoseconds on any
// monotonic scale — a netsim Simulator's virtual clock in simulations, so
// records from every router in one run share one time base). Must be called
// before packets flow; nil restores wall time. TotalNs stays a wall-clock
// measurement either way: At orders records, TotalNs meters the engine.
func (r *Recorder) SetClock(clock func() int64) { r.clock = clock }

func (r *Recorder) nowStamp() int64 {
	if r.clock != nil {
		return r.clock()
	}
	return time.Now().UnixNano()
}

// RecordOp implements core.Recorder by forwarding to the inner recorder.
func (r *Recorder) RecordOp(k core.Key, d time.Duration) {
	if r.inner != nil {
		r.inner.RecordOp(k, d)
	}
}

// RecordDrop implements core.Recorder by forwarding to the inner recorder.
func (r *Recorder) RecordDrop(reason core.DropReason) {
	if r.inner != nil {
		r.inner.RecordDrop(reason)
	}
}

// BeginPacket implements core.PacketRecorder: it decides whether this
// packet is sampled and, if so, claims a ring slot and attaches it to the
// context. Allocation-free on both paths. A burst dataplane that already
// took the decision (core.BurstPlan) stamps it on ctx.Sample: Skip returns
// immediately and Force claims a slot without touching the counters — the
// plan accounted the whole burst in BeginBurst.
func (r *Recorder) BeginPacket(ctx *core.ExecContext) {
	switch ctx.Sample {
	case core.SampleSkip:
		return
	case core.SampleForce:
		// decision and counter accounting already done by the burst plan
	default:
		// Stripe by context address: pooled contexts are worker-stable, so
		// this approximates a per-CPU counter without runtime hooks. The
		// conversion is used purely as an integer hash; the pointer is never
		// reconstructed.
		s := uintptr(unsafe.Pointer(ctx)) >> 4 & (stripes - 1)
		if r.counter[s].n.Add(1)%r.every != 0 {
			return
		}
	}
	seq := r.seq.Add(1) - 1
	sl := &r.slots[seq&r.mask]
	sl.ver.Add(1) // odd: under construction
	sl.steps.Store(0)
	sl.start = time.Now().UnixNano()
	sl.rec = Record{Seq: seq, At: r.nowStamp(), InPort: int32(ctx.InPort)}
	pkt := ctx.View.Packet()
	sl.rec.PktTotal = uint16(min(len(pkt), 1<<16-1))
	n := copy(sl.rec.Pkt[:], pkt)
	sl.rec.PktLen = uint8(n)
	ctx.Trace = sl
}

// EndPacket implements core.PacketRecorder: it seals the sampled record (a
// no-op for unsampled packets).
func (r *Recorder) EndPacket(ctx *core.ExecContext) {
	sl, ok := ctx.Trace.(*slot)
	if !ok || sl == nil {
		return
	}
	ctx.Trace = nil
	sl.rec.TotalNs = time.Now().UnixNano() - sl.start
	steps := sl.steps.Load()
	if steps > MaxSteps {
		sl.rec.NSteps = MaxSteps
		sl.rec.Truncated = uint8(min(int(steps)-MaxSteps, 255))
	} else {
		sl.rec.NSteps = uint8(steps)
	}
	sl.rec.Verdict = ctx.Verdict
	sl.rec.Reason = ctx.Reason
	ports := ctx.EgressPorts()
	sl.rec.NEgr = uint8(len(ports))
	for i, p := range ports {
		sl.rec.Egress[i] = int32(p)
	}
	sl.ver.Add(1) // even: stable
}

// NewBurstPlan implements core.BurstSampler: the returned plan lets one
// forwarding goroutine take the 1-in-every decision with plain local
// arithmetic, charging the shared stripe counters once per burst instead
// of once per packet. The plan preserves the exact sampling rate — every
// forwarder traces precisely its every-th packet — it only amortizes the
// accounting.
func (r *Recorder) NewBurstPlan() core.BurstPlan {
	return &burstPlan{r: r, countdown: r.every}
}

// burstPlan is one forwarder's private sampling state. Not safe for
// concurrent use (by contract each forwarder owns its plan).
type burstPlan struct {
	r         *Recorder
	countdown uint64
}

// BeginBurst accounts n observed packets against one stripe in a single
// atomic add, keeping Seen() monotone and rate-accurate. The stripe is
// chosen by the plan's address — stable for the plan's lifetime, so each
// forwarder keeps hitting its own cache line.
func (p *burstPlan) BeginBurst(n int) {
	if n <= 0 {
		return
	}
	s := uintptr(unsafe.Pointer(p)) >> 4 & (stripes - 1)
	p.r.counter[s].n.Add(uint64(n))
}

// Hint returns the pre-made decision for the next packet: SampleForce on
// every every-th packet this forwarder processes, SampleSkip otherwise.
func (p *burstPlan) Hint() core.SampleHint {
	p.countdown--
	if p.countdown == 0 {
		p.countdown = p.r.every
		return core.SampleForce
	}
	return core.SampleSkip
}

// Sampled returns how many packets have been traced so far.
func (r *Recorder) Sampled() uint64 { return r.seq.Load() }

// Seen returns how many packets passed the sampling decision (traced or
// not). It sums the stripe counters, so concurrent readings are
// approximate but monotone.
func (r *Recorder) Seen() uint64 {
	var n uint64
	for i := range r.counter {
		n += r.counter[i].n.Load()
	}
	return n
}

// Overwritten returns how many sampled records have been lost to ring
// wrap-around.
func (r *Recorder) Overwritten() uint64 {
	if s, size := r.seq.Load(), uint64(len(r.slots)); s > size {
		return s - size
	}
	return 0
}

// RingSize returns the ring capacity in records.
func (r *Recorder) RingSize() int { return len(r.slots) }

// SampleEvery returns the sampling divisor N (1-in-N).
func (r *Recorder) SampleEvery() int { return int(r.every) }

// Snapshot copies out the stable records currently in the ring, oldest
// first. Records being written concurrently are skipped (they will be
// complete by the next call); torn reads are prevented by the per-slot
// sequence locks.
func (r *Recorder) Snapshot() []Record {
	seq := r.seq.Load()
	size := uint64(len(r.slots))
	first := uint64(0)
	if seq > size {
		first = seq - size
	}
	out := make([]Record, 0, seq-first)
	for s := first; s < seq; s++ {
		sl := &r.slots[s&r.mask]
		for attempt := 0; attempt < 3; attempt++ {
			v1 := sl.ver.Load()
			if v1%2 != 0 {
				continue // mid-write; retry
			}
			rec := sl.rec
			if sl.ver.Load() != v1 {
				continue // overwritten underneath us; retry
			}
			// The slot may have been reused for a newer sequence number
			// while we walked; only keep the record we came for.
			if rec.Seq == s {
				out = append(out, rec)
			}
			break
		}
	}
	return out
}

// String renders the record as dipdump-ready text: one '#'-prefixed
// metadata line (echoed by dipdump and pretty-printed when recognized)
// followed by the hex of the captured packet prefix, which dipdump
// dissects like any capture.
func (rec Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# trace seq=%d at=%d in=%d verdict=%s reason=%s total=%s",
		rec.Seq, rec.At, rec.InPort, rec.Verdict, rec.Reason, time.Duration(rec.TotalNs))
	if rec.NEgr > 0 {
		b.WriteString(" egress=")
		for i := uint8(0); i < rec.NEgr; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", rec.Egress[i])
		}
	}
	if rec.NSteps > 0 {
		b.WriteString(" steps=")
		for i := uint8(0); i < rec.NSteps; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", rec.Steps[i].Key, time.Duration(rec.Steps[i].Ns))
		}
	}
	if rec.Truncated > 0 {
		fmt.Fprintf(&b, " truncated=%d", rec.Truncated)
	}
	fmt.Fprintf(&b, " pktlen=%d\n", rec.PktTotal)
	for i := uint8(0); i < rec.PktLen; i++ {
		fmt.Fprintf(&b, "%02x", rec.Pkt[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// Dump writes every stable record in the ring to w in dipdump-ready form:
// pipe it into dipdump to dissect each sampled packet alongside its
// journey metadata.
func (r *Recorder) Dump(w io.Writer) error {
	for _, rec := range r.Snapshot() {
		if _, err := io.WriteString(w, rec.String()); err != nil {
			return err
		}
	}
	return nil
}
