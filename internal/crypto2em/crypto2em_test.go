package crypto2em

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testCipher(t *testing.T) *Cipher {
	t.Helper()
	key, err := Expand(bytes.Repeat([]byte{0x42}, 16))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]byte, 47)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := New(make([]byte, 49)); err == nil {
		t.Error("long key accepted")
	}
	if _, err := Expand(make([]byte, 15)); err == nil {
		t.Error("short master accepted")
	}
}

func TestExpandDistinctRoundKeys(t *testing.T) {
	key, _ := Expand(make([]byte, 16))
	k1, k2, k3 := key[0:16], key[16:32], key[32:48]
	if bytes.Equal(k1, k2) || bytes.Equal(k2, k3) || bytes.Equal(k1, k3) {
		t.Error("round keys must differ")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := testCipher(t)
	f := func(block [BlockSize]byte) bool {
		var ct, pt [BlockSize]byte
		c.Encrypt(ct[:], block[:])
		if ct == block {
			return false // a fixed point across random inputs would be astonishing
		}
		c.Decrypt(pt[:], ct[:])
		return pt == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	c := testCipher(t)
	src := bytes.Repeat([]byte{7}, BlockSize)
	want := make([]byte, BlockSize)
	c.Encrypt(want, src)
	c.Encrypt(src, src)
	if !bytes.Equal(src, want) {
		t.Error("in-place encrypt differs from out-of-place")
	}
}

func TestKeysMatter(t *testing.T) {
	k1, _ := Expand(bytes.Repeat([]byte{1}, 16))
	k2, _ := Expand(bytes.Repeat([]byte{2}, 16))
	c1, _ := New(k1)
	c2, _ := New(k2)
	var in, o1, o2 [BlockSize]byte
	c1.Encrypt(o1[:], in[:])
	c2.Encrypt(o2[:], in[:])
	if o1 == o2 {
		t.Error("different keys produced equal ciphertexts")
	}
}

func TestMACDeterministicAndKeyed(t *testing.T) {
	c := testCipher(t)
	msg := []byte("the 416-bit OPT region stand-in")
	t1 := c.Sum(nil, msg)
	t2 := c.Sum(nil, msg)
	if !bytes.Equal(t1, t2) {
		t.Error("MAC not deterministic")
	}
	other, _ := Expand(bytes.Repeat([]byte{9}, 16))
	oc, _ := New(other)
	if bytes.Equal(t1, oc.Sum(nil, msg)) {
		t.Error("MAC ignores key")
	}
}

func TestMACLengthBinding(t *testing.T) {
	// A block-aligned message and the same message plus the padding byte
	// pattern must not collide (the classic CBC-MAC pitfall).
	c := testCipher(t)
	m1 := make([]byte, BlockSize)
	m2 := make([]byte, BlockSize+1)
	copy(m2, m1)
	m2[BlockSize] = 0x80
	if bytes.Equal(c.Sum(nil, m1), c.Sum(nil, m2)) {
		t.Error("padding collision")
	}
	// Distinct lengths of all residues must produce distinct tags.
	seen := map[string]int{}
	base := bytes.Repeat([]byte{0xAA}, 3*BlockSize)
	for n := 0; n <= len(base); n++ {
		tag := string(c.Sum(nil, base[:n]))
		if prev, ok := seen[tag]; ok {
			t.Fatalf("tag collision between lengths %d and %d", prev, n)
		}
		seen[tag] = n
	}
}

func TestMACBitSensitivityQuick(t *testing.T) {
	c := testCipher(t)
	f := func(msg []byte, at uint16) bool {
		if len(msg) == 0 {
			return true
		}
		t1 := c.Sum(nil, msg)
		mod := append([]byte(nil), msg...)
		mod[int(at)%len(mod)] ^= 0x80
		return !bytes.Equal(t1, c.Sum(nil, mod))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVerify(t *testing.T) {
	c := testCipher(t)
	msg := []byte("payload")
	tag := c.Sum(nil, msg)
	if !c.Verify(msg, tag) {
		t.Error("valid tag rejected")
	}
	tag[3] ^= 0x10
	if c.Verify(msg, tag) {
		t.Error("tampered tag accepted")
	}
	if c.Verify(msg, tag[:4]) {
		t.Error("truncated tag accepted")
	}
}

func TestSumIntoPanicsOnBadSize(t *testing.T) {
	c := testCipher(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad out size")
		}
	}()
	c.SumInto(make([]byte, 4), nil)
}

func BenchmarkSum52B(b *testing.B) {
	key, _ := Expand(make([]byte, 16))
	c, _ := New(key)
	msg := make([]byte, 52)
	var out [BlockSize]byte
	b.ReportAllocs()
	b.SetBytes(52)
	for i := 0; i < b.N; i++ {
		c.SumInto(out[:], msg)
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	key, _ := Expand(make([]byte, 16))
	c, _ := New(key)
	var blk [BlockSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk[:], blk[:])
	}
}

func TestFromMasterMatchesExpand(t *testing.T) {
	var master [16]byte
	for i := range master {
		master[i] = byte(i * 7)
	}
	key, _ := Expand(master[:])
	ref, _ := New(key)
	c := FromMaster(&master)
	msg := []byte("equivalence check between key paths")
	if !bytes.Equal(ref.Sum(nil, msg), c.Sum(nil, msg)) {
		t.Error("FromMaster disagrees with Expand+New")
	}
}

func TestFromMasterZeroAlloc(t *testing.T) {
	var master [16]byte
	msg := make([]byte, 52)
	var out [BlockSize]byte
	allocs := testing.AllocsPerRun(500, func() {
		c := FromMaster(&master)
		c.SumInto(out[:], msg)
	})
	if allocs != 0 {
		t.Errorf("FromMaster+SumInto allocates %.1f", allocs)
	}
}
