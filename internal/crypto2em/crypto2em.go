// Package crypto2em implements the 2EM key-alternating cipher (two-round
// Even–Mansour; Bogdanov et al., EUROCRYPT 2012) and a CBC-MAC mode over it.
//
// The DIP prototype uses 2EM instead of AES for its F_MAC operation because
// 2EM is "more friendly to Barefoot Tofino and can be completed without
// resubmitting the packet" (paper §4.1). The construction is
//
//	E_k(x) = P2( P1( x ⊕ k1 ) ⊕ k2 ) ⊕ k3
//
// where P1 and P2 are fixed public permutations. The security of
// Even–Mansour rests on the keys, not on the permutations' secrecy, so we
// instantiate P1 and P2 as 128-bit ARX permutations (SipHash-style rounds
// with distinct round constants) — the software analogue of the
// table-implemented public permutations a Tofino realization uses. Being
// branch-free integer code with no key schedule, deriving and using a
// per-packet 2EM instance allocates nothing, which is exactly the
// structural advantage over AES (whose per-key schedule and generic cipher
// interface cost both time and allocation) that experiment E3 measures.
package crypto2em

import (
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BlockSize is the 2EM block size in bytes (128-bit blocks).
const BlockSize = 16

// KeySize is the size of a 2EM key: three 128-bit round keys.
const KeySize = 3 * BlockSize

// permRounds is the number of ARX rounds per public permutation. Eight
// double-rounds give full diffusion across both 64-bit lanes.
const permRounds = 8

// Round constants (distinct per permutation): odd 64-bit constants derived
// from the fractional parts of sqrt(2) and sqrt(3), the usual
// nothing-up-my-sleeve choice.
var (
	rc1 = [permRounds]uint64{
		0x6a09e667f3bcc909, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
		0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
	}
	rc2 = [permRounds]uint64{
		0xcbbb9d5dc1059ed9, 0x629a292a367cd507, 0x9159015a3070dd17, 0x152fecd8f70e5939,
		0x67332667ffc00b31, 0x8eb44a8768581511, 0xdb0c2e0d64f98fa7, 0x47b5481dbefa4fa4,
	}
)

// permute applies one public permutation (selected by rc) to the two lanes.
func permute(rc *[permRounds]uint64, a, b uint64) (uint64, uint64) {
	for i := 0; i < permRounds; i++ {
		a += b
		b = bits.RotateLeft64(b, 13) ^ a
		a = bits.RotateLeft64(a, 32) + b
		b = bits.RotateLeft64(b, 17) ^ a
		a = bits.RotateLeft64(a, 21)
		a += rc[i]
	}
	return a, b
}

// unpermute inverts permute.
func unpermute(rc *[permRounds]uint64, a, b uint64) (uint64, uint64) {
	for i := permRounds - 1; i >= 0; i-- {
		a -= rc[i]
		a = bits.RotateLeft64(a, -21)
		b ^= a
		b = bits.RotateLeft64(b, -17)
		a -= b
		a = bits.RotateLeft64(a, -32)
		b ^= a
		b = bits.RotateLeft64(b, -13)
		a -= b
	}
	return a, b
}

// Cipher is a 2EM block cipher instance. The zero value is a valid cipher
// under the all-zero key; instances are safe for concurrent use.
type Cipher struct {
	k1a, k1b uint64
	k2a, k2b uint64
	k3a, k3b uint64
}

// New builds a Cipher from a 48-byte key (k1‖k2‖k3). Shorter master keys
// should be expanded first (see Expand or FromMaster).
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("crypto2em: key must be %d bytes, got %d", KeySize, len(key))
	}
	c := &Cipher{}
	c.k1a = binary.BigEndian.Uint64(key[0:8])
	c.k1b = binary.BigEndian.Uint64(key[8:16])
	c.k2a = binary.BigEndian.Uint64(key[16:24])
	c.k2b = binary.BigEndian.Uint64(key[24:32])
	c.k3a = binary.BigEndian.Uint64(key[32:40])
	c.k3b = binary.BigEndian.Uint64(key[40:48])
	return c, nil
}

// Expand stretches a 16-byte master key into a 48-byte 2EM key by running
// the master through the public permutations with distinct tweaks, the
// usual way single-key Even–Mansour variants derive round keys.
func Expand(master []byte) ([]byte, error) {
	if len(master) != BlockSize {
		return nil, fmt.Errorf("crypto2em: master key must be %d bytes, got %d", BlockSize, len(master))
	}
	var m [BlockSize]byte
	copy(m[:], master)
	c := FromMaster(&m)
	out := make([]byte, KeySize)
	binary.BigEndian.PutUint64(out[0:8], c.k1a)
	binary.BigEndian.PutUint64(out[8:16], c.k1b)
	binary.BigEndian.PutUint64(out[16:24], c.k2a)
	binary.BigEndian.PutUint64(out[24:32], c.k2b)
	binary.BigEndian.PutUint64(out[32:40], c.k3a)
	binary.BigEndian.PutUint64(out[40:48], c.k3b)
	return out, nil
}

// FromMaster builds a Cipher by value from a 16-byte master key, deriving
// k2 = P1(master ⊕ t1) and k3 = P2(master ⊕ t2) on the caller's stack.
// Because 2EM has no key schedule, deriving a fresh per-packet cipher this
// way allocates nothing — the property that keeps F_MAC off the garbage
// collector.
func FromMaster(master *[BlockSize]byte) Cipher {
	var c Cipher
	c.k1a = binary.BigEndian.Uint64(master[0:8])
	c.k1b = binary.BigEndian.Uint64(master[8:16])
	c.k2a, c.k2b = permute(&rc1, c.k1a^0x01, c.k1b)
	c.k3a, c.k3b = permute(&rc2, c.k1a^0x02, c.k1b)
	return c
}

// BlockSize returns the cipher block size (mirrors cipher.Block).
func (c *Cipher) BlockSize() int { return BlockSize }

// Encrypt computes dst = E(src) for one block. dst and src may overlap
// exactly; both must be at least BlockSize long.
func (c *Cipher) Encrypt(dst, src []byte) {
	a := binary.BigEndian.Uint64(src[0:8]) ^ c.k1a
	b := binary.BigEndian.Uint64(src[8:16]) ^ c.k1b
	a, b = permute(&rc1, a, b)
	a, b = permute(&rc2, a^c.k2a, b^c.k2b)
	binary.BigEndian.PutUint64(dst[0:8], a^c.k3a)
	binary.BigEndian.PutUint64(dst[8:16], b^c.k3b)
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(dst, src []byte) {
	a := binary.BigEndian.Uint64(src[0:8]) ^ c.k3a
	b := binary.BigEndian.Uint64(src[8:16]) ^ c.k3b
	a, b = unpermute(&rc2, a, b)
	a, b = unpermute(&rc1, a^c.k2a, b^c.k2b)
	binary.BigEndian.PutUint64(dst[0:8], a^c.k1a)
	binary.BigEndian.PutUint64(dst[8:16], b^c.k1b)
}

// Sum appends the 16-byte 2EM-CBC-MAC of msg to dst. The mode is CBC-MAC
// with 10*-style padding and a length block, making it safe for the
// variable-length inputs OPT feeds it (the 416-bit tag region plus hop
// parameters).
func (c *Cipher) Sum(dst, msg []byte) []byte {
	var x [BlockSize]byte
	n := len(msg)
	for off := 0; off+BlockSize <= n; off += BlockSize {
		for i := 0; i < BlockSize; i++ {
			x[i] ^= msg[off+i]
		}
		c.Encrypt(x[:], x[:])
	}
	// Final partial block with 10* padding (always present: if the message
	// is block-aligned, a full padding block is processed, preventing
	// extension between aligned and unaligned inputs).
	var last [BlockSize]byte
	rem := n % BlockSize
	copy(last[:], msg[n-rem:])
	last[rem] = 0x80
	for i := 0; i < BlockSize; i++ {
		x[i] ^= last[i]
	}
	c.Encrypt(x[:], x[:])
	// Length block binds the total length.
	var lb [BlockSize]byte
	binary.BigEndian.PutUint64(lb[8:], uint64(n))
	for i := 0; i < BlockSize; i++ {
		x[i] ^= lb[i]
	}
	c.Encrypt(x[:], x[:])
	return append(dst, x[:]...)
}

// SumInto writes the 16-byte MAC of msg into out (exactly BlockSize long)
// without allocating.
func (c *Cipher) SumInto(out, msg []byte) {
	if len(out) != BlockSize {
		panic("crypto2em: SumInto requires a 16-byte output")
	}
	c.Sum(out[:0], msg)
}

// Verify reports whether tag is the MAC of msg, in constant time.
func (c *Cipher) Verify(msg, tag []byte) bool {
	if len(tag) != BlockSize {
		return false
	}
	var want [BlockSize]byte
	c.SumInto(want[:], msg)
	return subtle.ConstantTimeCompare(want[:], tag) == 1
}
