// Package workload generates synthetic packet traces for benchmarks and
// stress tests: configurable protocol mixes over the §3 profiles, Zipf
// content-name popularity (the usual NDN workload model), random address
// pools, and padded packet sizes. The generator is deterministic for a
// given seed so experiments are reproducible.
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"dip/internal/core"
	"dip/internal/opt"
	"dip/internal/profiles"
)

// Protocol labels trace entries.
type Protocol uint8

// Protocols the generator can emit.
const (
	ProtoIPv4 Protocol = iota
	ProtoIPv6
	ProtoNDN // an interest/data pair
	ProtoOPT
	ProtoNDNOPT // an interest + NDN+OPT data pair
	numProtocols
)

// String names the protocol.
func (p Protocol) String() string {
	names := [...]string{"ipv4", "ipv6", "ndn", "opt", "ndn+opt"}
	if int(p) < len(names) {
		return names[p]
	}
	return "proto(?)"
}

// NamePrefix is the content-name prefix all generated names share; route
// it in the NameFIB to make the trace forwardable.
const NamePrefix = 0xAA000000

// AddrPrefixByte is the first octet of every generated IPv4 destination;
// route AddrPrefixByte/8 in FIB32. Generated IPv6 destinations start with
// Addr6PrefixByte; route it /8 in FIB128.
const (
	AddrPrefixByte  = 10
	Addr6PrefixByte = 0x20
)

// Spec configures a trace.
type Spec struct {
	// Weights select the protocol mix (zero-valued entries are excluded).
	Weights map[Protocol]float64
	// Names is the distinct content-name population (≥ 1 for NDN traffic).
	Names int
	// ZipfS is the Zipf skew (>1); 0 disables skew (uniform).
	ZipfS float64
	// PacketSize pads every packet to this many bytes (0 = no padding).
	PacketSize int
	// Ports is the router port fan-in to attribute packets to.
	Ports int
	// Session supplies OPT state (required for OPT / NDN+OPT weights).
	Session *opt.Session
	// Seed makes the trace reproducible.
	Seed int64
}

// Packet is one trace entry.
type Packet struct {
	Buf    []byte
	InPort int
	Proto  Protocol
	// HopByte is the offset of the hop-limit byte, for cheap re-arming
	// when a trace is replayed multiple times.
	HopByte int
}

// Rearm restores the hop limit consumed by a previous replay.
func (p *Packet) Rearm() { p.Buf[p.HopByte] = 64 }

// Trace is a generated packet sequence.
type Trace struct {
	Packets []Packet
	// Counts tallies packets per protocol.
	Counts map[Protocol]int
}

// Generate builds a trace of n logical events (an NDN event contributes
// two packets: interest then data for the same name, ordered so the data
// finds its PIT entry).
func Generate(spec Spec, n int) (*Trace, error) {
	if spec.Names <= 0 {
		spec.Names = 1024
	}
	if spec.Ports <= 0 {
		spec.Ports = 4
	}
	var protos []Protocol
	var cum []float64
	total := 0.0
	for p := Protocol(0); p < numProtocols; p++ {
		w := spec.Weights[p]
		if w <= 0 {
			continue
		}
		if (p == ProtoOPT || p == ProtoNDNOPT) && spec.Session == nil {
			return nil, fmt.Errorf("workload: %v weight requires a Session", p)
		}
		total += w
		protos = append(protos, p)
		cum = append(cum, total)
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("workload: no protocol weights")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var zipf *rand.Zipf
	if spec.ZipfS > 1 {
		zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Names-1))
	}
	name := func() uint32 {
		if zipf != nil {
			return NamePrefix | uint32(zipf.Uint64())
		}
		return NamePrefix | uint32(rng.Intn(spec.Names))
	}

	tr := &Trace{Counts: map[Protocol]int{}}
	emit := func(h *core.Header, proto Protocol, payload []byte) error {
		buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(payload)))
		if err != nil {
			return err
		}
		buf = append(buf, payload...)
		for len(buf) < spec.PacketSize {
			buf = append(buf, 0xA5)
		}
		tr.Packets = append(tr.Packets, Packet{
			Buf:     buf,
			InPort:  rng.Intn(spec.Ports),
			Proto:   proto,
			HopByte: 3,
		})
		tr.Counts[proto]++
		return nil
	}

	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		proto := protos[len(protos)-1]
		for j, c := range cum {
			if x < c {
				proto = protos[j]
				break
			}
		}
		switch proto {
		case ProtoIPv4:
			var src, dst [4]byte
			rng.Read(src[:])
			rng.Read(dst[:])
			dst[0] = AddrPrefixByte
			if err := emit(profiles.IPv4(src, dst), proto, nil); err != nil {
				return nil, err
			}
		case ProtoIPv6:
			var src, dst [16]byte
			rng.Read(src[:])
			rng.Read(dst[:])
			dst[0] = Addr6PrefixByte
			if err := emit(profiles.IPv6(src, dst), proto, nil); err != nil {
				return nil, err
			}
		case ProtoNDN:
			nm := name()
			if err := emit(profiles.NDNInterest(nm), proto, nil); err != nil {
				return nil, err
			}
			if err := emit(profiles.NDNData(nm), proto, payloadFor(nm)); err != nil {
				return nil, err
			}
		case ProtoOPT:
			h, err := profiles.OPT(spec.Session, nil, uint32(i))
			if err != nil {
				return nil, err
			}
			if err := emit(h, proto, nil); err != nil {
				return nil, err
			}
		case ProtoNDNOPT:
			nm := name()
			if err := emit(profiles.NDNInterest(nm), ProtoNDN, nil); err != nil {
				return nil, err
			}
			h, err := profiles.NDNOPTData(spec.Session, nm, payloadFor(nm), uint32(i))
			if err != nil {
				return nil, err
			}
			if err := emit(h, proto, payloadFor(nm)); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}

// payloadFor derives a small deterministic payload from a name so NDN+OPT
// data hashes are consistent.
func payloadFor(name uint32) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:], name)
	binary.BigEndian.PutUint32(b[4:], ^name)
	return b[:]
}
