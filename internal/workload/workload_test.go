package workload

import (
	"bytes"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/pit"
)

func testSession(t *testing.T) (*opt.Session, *drkey.SecretValue) {
	t.Helper()
	sv, err := drkey.NewSecretValue("r", bytes.Repeat([]byte{1}, 16))
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{2}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, []opt.HopConfig{{Secret: sv}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	return sess, sv
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Weights: map[Protocol]float64{ProtoIPv4: 1, ProtoNDN: 1}, Seed: 42}
	a, err := Generate(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(spec, 100)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i].Buf, b.Packets[i].Buf) || a.Packets[i].InPort != b.Packets[i].InPort {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateMixAndValidity(t *testing.T) {
	sess, _ := testSession(t)
	spec := Spec{
		Weights:    map[Protocol]float64{ProtoIPv4: 2, ProtoIPv6: 1, ProtoNDN: 1, ProtoOPT: 1, ProtoNDNOPT: 1},
		Names:      64,
		ZipfS:      1.2,
		PacketSize: 128,
		Ports:      8,
		Session:    sess,
		Seed:       7,
	}
	tr, err := Generate(spec, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) < 500 {
		t.Fatalf("only %d packets", len(tr.Packets))
	}
	for _, p := range []Protocol{ProtoIPv4, ProtoIPv6, ProtoNDN, ProtoOPT, ProtoNDNOPT} {
		if tr.Counts[p] == 0 {
			t.Errorf("no %v packets generated", p)
		}
	}
	for i, p := range tr.Packets {
		if len(p.Buf) < spec.PacketSize {
			t.Fatalf("packet %d is %d bytes", i, len(p.Buf))
		}
		if p.InPort < 0 || p.InPort >= spec.Ports {
			t.Fatalf("packet %d port %d", i, p.InPort)
		}
		if _, err := core.ParseView(p.Buf); err != nil {
			t.Fatalf("packet %d unparseable: %v", i, err)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}, 10); err == nil {
		t.Error("no weights accepted")
	}
	if _, err := Generate(Spec{Weights: map[Protocol]float64{ProtoOPT: 1}}, 10); err == nil {
		t.Error("OPT without session accepted")
	}
}

// A generated trace must actually flow through a router: NDN data packets
// find their PIT entries because interests precede them.
func TestTraceForwardsThroughEngine(t *testing.T) {
	sess, sv := testSession(t)
	cfg := ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
		PIT:     pit.New[uint32](pit.WithCapacity[uint32](1 << 20)),
		Secret:  sv,
		MACKind: opt.Kind2EM,
	}
	cfg.FIB32.AddUint32(uint32(AddrPrefixByte)<<24, 8, fib.NextHop{Port: 1})
	pfx := make([]byte, 16)
	pfx[0] = Addr6PrefixByte
	cfg.FIB128.Add(pfx, 8, fib.NextHop{Port: 1})
	cfg.NameFIB.AddUint32(NamePrefix, 8, fib.NextHop{Port: 1})
	e := core.NewEngine(ops.NewRouterRegistry(cfg), core.Limits{})

	tr, err := Generate(Spec{
		Weights: map[Protocol]float64{ProtoIPv4: 1, ProtoIPv6: 1, ProtoNDN: 2, ProtoOPT: 1, ProtoNDNOPT: 1},
		Names:   50,
		Session: sess,
		Seed:    3,
	}, 400)
	if err != nil {
		t.Fatal(err)
	}
	var ctx core.ExecContext
	verdicts := map[core.Verdict]int{}
	drops := map[core.DropReason]int{}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		v, err := core.ParseView(p.Buf)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, p.InPort)
		e.Process(&ctx)
		verdicts[ctx.Verdict]++
		if ctx.Verdict == core.VerdictDrop {
			drops[ctx.Reason]++
		}
	}
	// Drops can only come from NDN name collisions (duplicate data after
	// aggregation); everything else must forward or absorb.
	for reason, n := range drops {
		if reason != core.DropPITMiss {
			t.Errorf("%d unexpected drops: %v", n, reason)
		}
	}
	if verdicts[core.VerdictForward] < len(tr.Packets)/2 {
		t.Errorf("too few forwards: %v", verdicts)
	}
}

func TestRearm(t *testing.T) {
	tr, err := Generate(Spec{Weights: map[Protocol]float64{ProtoIPv4: 1}, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := &tr.Packets[0]
	p.Buf[p.HopByte] = 0
	p.Rearm()
	v, _ := core.ParseView(p.Buf)
	if v.HopLimit() != 64 {
		t.Errorf("hop limit %d", v.HopLimit())
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	spec := Spec{
		Weights: map[Protocol]float64{ProtoNDN: 1},
		Names:   1000,
		ZipfS:   1.5,
		Seed:    11,
	}
	tr, err := Generate(spec, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Count name frequency from interest packets.
	freq := map[uint32]int{}
	for _, p := range tr.Packets {
		v, _ := core.ParseView(p.Buf)
		if v.FN(0).Key == core.KeyFIB {
			freq[uint32(v.Locations()[0])<<24|uint32(v.Locations()[1])<<16|
				uint32(v.Locations()[2])<<8|uint32(v.Locations()[3])]++
		}
	}
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	// With s=1.5 the most popular of 1000 names must dominate far beyond
	// the uniform expectation (~2 of 2000).
	if max < 50 {
		t.Errorf("zipf skew missing: max frequency %d", max)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoNDNOPT.String() != "ndn+opt" || Protocol(99).String() != "proto(?)" {
		t.Error("Protocol strings")
	}
}
