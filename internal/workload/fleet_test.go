package workload

import (
	"reflect"
	"testing"
	"time"

	"dip/internal/cc"
	"dip/internal/telemetry"
)

// TestFleetCCSmoke is the `make ccsmoke` gate: a moderate-load fleet run
// must complete every object, dead-letter nothing, and split the
// bottleneck fairly (Jain ≥ 0.9) — the congestion controller keeping tens
// of consumers out of each other's way.
func TestFleetCCSmoke(t *testing.T) {
	met := &telemetry.Metrics{}
	fl, err := NewFleet(FleetConfig{
		Consumers:          48,
		ObjectsPerConsumer: 3,
		Objects:            128,
		SegsPerObject:      8,
		SegSize:            1000,
		BottleneckBPS:      50_000_000,
		Horizon:            30 * time.Second,
		Seed:               42,
		Metrics:            met,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fl.Run()

	want := int64(48 * 3)
	if res.ObjectsCompleted != want || res.ObjectsFailed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", res.ObjectsCompleted, res.ObjectsFailed, want)
	}
	if res.DeadLetters != 0 {
		t.Fatalf("dead letters = %d, want 0 at moderate load", res.DeadLetters)
	}
	if res.JainIndex < 0.9 {
		t.Fatalf("Jain index %.3f < 0.9", res.JainIndex)
	}
	if res.GoodputBytes != want*8*1000 {
		t.Fatalf("goodput %d bytes, want %d", res.GoodputBytes, want*8*1000)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("percentiles p50=%v p99=%v", res.P50, res.P99)
	}
	if res.GoodputBps <= 0 {
		t.Fatalf("goodput rate %.0f", res.GoodputBps)
	}
}

// Same seed, same config → bit-identical outcome, per-consumer stats
// included. The fleet is an experiment, not a lottery.
func TestFleetDeterministicBySeed(t *testing.T) {
	cfg := FleetConfig{
		Consumers:          24,
		ObjectsPerConsumer: 2,
		SegsPerObject:      6,
		BottleneckBPS:      10_000_000,
		LossProb:           0.02,
		IPLoad:             0.2,
		Horizon:            20 * time.Second,
		Seed:               7,
	}
	run := func() *FleetResult {
		fl, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fl.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Retransmits == 0 {
		t.Fatal("2% loss produced no retransmits — loss model not engaged")
	}
	c := cfg
	c.Seed = 8
	fl, err := NewFleet(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, fl.Run()) {
		t.Fatal("different seeds produced identical runs")
	}
}

// A flash crowd hammering a Zipf-hot catalog through one router must be
// absorbed by PIT aggregation and the content store: everyone completes,
// and the bottleneck carries far fewer bytes than consumers received.
func TestFleetFlashCrowdAggregates(t *testing.T) {
	fl, err := NewFleet(FleetConfig{
		Consumers:          8,
		FlashConsumers:     400,
		FlashAt:            2 * time.Second,
		FlashWindow:        20 * time.Millisecond,
		ObjectsPerConsumer: 1,
		Objects:            64,
		SegsPerObject:      8,
		SegSize:            1000,
		ZipfS:              1.5,
		BottleneckBPS:      20_000_000,
		CacheEntries:       1024,
		// A hot PIT entry is collectively refreshed by every pending
		// consumer's retransmissions, so punch-through needs deeper backoff
		// than the per-consumer default budgets for.
		MaxRetx: 10,
		Horizon: 30 * time.Second,
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fl.Run()

	if res.ObjectsFailed != 0 || res.DeadLetters != 0 {
		t.Fatalf("flash crowd saw failures: %+v", res)
	}
	if res.ObjectsCompleted != 8+400 {
		t.Fatalf("completed %d objects, want %d", res.ObjectsCompleted, 8+400)
	}
	// 408 consumers received ~8KB each; the shared link must have carried
	// well under half of that (the rest served by cache/PIT fan-out).
	if res.BottleneckBytes >= res.GoodputBytes/2 {
		t.Fatalf("bottleneck carried %d of %d goodput bytes — no aggregation happened",
			res.BottleneckBytes, res.GoodputBytes)
	}
	if res.CacheEntriesEnd == 0 {
		t.Fatal("content store never populated")
	}
}

// NDN fetching and IP background traffic share the fabric: both make it
// across, and the IP load doesn't starve the fetches.
func TestFleetMixedIPAndNDN(t *testing.T) {
	fl, err := NewFleet(FleetConfig{
		Consumers:          16,
		ObjectsPerConsumer: 2,
		SegsPerObject:      4,
		BottleneckBPS:      20_000_000,
		IPLoad:             0.3,
		Horizon:            20 * time.Second,
		Seed:               3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fl.Run()
	if res.IPDelivered == 0 {
		t.Fatal("no background IP packets crossed the fabric")
	}
	if res.ObjectsCompleted != 16*2 || res.ObjectsFailed != 0 {
		t.Fatalf("NDN fetches suffered under IP load: %+v", res)
	}
}

// Ten thousand consumers is a normal fleet run, not a special mode: the
// closed loops, PIT, and window control keep the run finishing with zero
// dead letters in bounded virtual time.
func TestFleetTenThousandConsumers(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet skipped in -short")
	}
	fl, err := NewFleet(FleetConfig{
		Consumers:          10_000,
		ObjectsPerConsumer: 1,
		Objects:            512,
		SegsPerObject:      4,
		SegSize:            600,
		RampWindow:         8 * time.Second,
		BottleneckBPS:      100_000_000,
		CacheEntries:       2048,
		Horizon:            60 * time.Second,
		Seed:               1001,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fl.Run()
	if res.ObjectsCompleted != 10_000 || res.ObjectsFailed != 0 || res.DeadLetters != 0 {
		t.Fatalf("10k-consumer fleet: %+v", res)
	}
	if res.JainIndex < 0.9 {
		t.Fatalf("Jain index %.3f < 0.9 at 10k consumers", res.JainIndex)
	}
}

// Blind fixed-window fetching loses to the adaptive controller on the
// same congested fleet — the fleet-level version of the chaos acceptance
// test, and the shape E19 plots.
func TestFleetAdaptiveBeatsBlindUnderCongestion(t *testing.T) {
	base := FleetConfig{
		Consumers:          24,
		ObjectsPerConsumer: 3,
		Objects:            64,
		SegsPerObject:      8,
		SegSize:            1000,
		BottleneckBPS:      4_000_000, // tight: aggregate demand exceeds it
		BottleneckQueue:    10 * time.Millisecond,
		CacheEntries:       -1, // no cache: every byte crosses the bottleneck
		Horizon:            40 * time.Second,
		Seed:               21,
		MaxRetx:            8,
	}
	run := func(algo cc.Algo, initCwnd int) *FleetResult {
		cfg := base
		cfg.CC = cc.Config{Algo: algo, InitCwnd: initCwnd, MaxCwnd: 64,
			RTT: cc.RTTConfig{InitRTO: 100 * time.Millisecond, MinRTO: 20 * time.Millisecond}}
		fl, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fl.Run()
	}
	adaptive := run(cc.AlgoAIMD, 2)
	blind := run(cc.AlgoBlind, 16) // fixed window, fixed RTO + backoff

	if adaptive.ObjectsCompleted < blind.ObjectsCompleted {
		t.Fatalf("adaptive completed %d < blind %d", adaptive.ObjectsCompleted, blind.ObjectsCompleted)
	}
	if adaptive.Retransmits >= blind.Retransmits {
		t.Fatalf("adaptive retransmits %d ≥ blind %d", adaptive.Retransmits, blind.Retransmits)
	}
	if adaptive.CwndCuts == 0 {
		t.Fatal("congestion never cut the adaptive window")
	}
	if adaptive.JainIndex < 0.9 {
		t.Fatalf("adaptive Jain %.3f < 0.9", adaptive.JainIndex)
	}
}

func TestJainIndex(t *testing.T) {
	for _, tc := range []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
	} {
		if got := JainIndex(tc.xs); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("JainIndex(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
	if j := JainIndex([]float64{3, 4, 5}); j <= 0.25 || j >= 1 {
		t.Errorf("uneven shares gave %v", j)
	}
}

func TestCompletionPercentile(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2}
	if p := CompletionPercentile(ds, 0.5); p != 2 {
		t.Errorf("p50 = %v", p)
	}
	if p := CompletionPercentile(ds, 0.99); p != 4 {
		t.Errorf("p99 = %v", p)
	}
	if p := CompletionPercentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	if got := []time.Duration{4, 1, 3, 2}; !reflect.DeepEqual(ds, got) {
		t.Error("input mutated")
	}
}
