// Consumer fleet: a scaled-down stand-in for "millions of users" that
// still runs deterministically. Tens of thousands of simulated consumers
// share one DIP router and one bottleneck link to a producer under netsim
// virtual time; each consumer fetches multi-segment objects through a
// congestion-controlled SegFetcher (internal/cc), content popularity is
// Zipf, arrivals come in a steady-state phase plus an optional flash-crowd
// burst, and IP background traffic shares the same fabric so the NDN flows
// compete with non-NDN load. Everything — arrivals, think times, object
// choice, queueing, loss — derives from one seed, so a fleet run is a
// reproducible experiment, not an anecdote.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/host"
	"dip/internal/netsim"
	"dip/internal/ops"
	"dip/internal/pit"
	"dip/internal/router"
	"dip/internal/telemetry"

	"dip/internal/fib"
	"dip/internal/profiles"
)

// FleetConfig sizes and shapes a fleet run. Zero values select the
// defaults noted on each field.
type FleetConfig struct {
	// Consumers is the steady-state population (default 64).
	Consumers int
	// FlashConsumers join all at once at FlashAt (default 0 = no flash
	// crowd), spread across FlashWindow (default 10ms).
	FlashConsumers int
	FlashAt        time.Duration
	FlashWindow    time.Duration
	// RampWindow spreads steady-state consumer starts over [0, RampWindow)
	// (default 1s).
	RampWindow time.Duration

	// Objects is the catalog size (default 256); SegsPerObject segments
	// per object (default 8); SegSize payload bytes per segment (default
	// 1000). Object k's first segment is named NamePrefix + k·SegsPerObject.
	Objects       int
	SegsPerObject int
	SegSize       int
	// ZipfS is the content-popularity skew (>1 skews; default 1.2).
	ZipfS float64
	// ObjectsPerConsumer is the closed-loop fetch count per steady-state
	// consumer (default 4; flash consumers fetch one object each).
	ObjectsPerConsumer int
	// ThinkTime is the mean exponential pause between a consumer's
	// fetches (default 50ms).
	ThinkTime time.Duration

	// CC configures every consumer's congestion controller (default: AIMD
	// with a path-scaled adaptive RTO). MaxRetx bounds per-segment
	// retransmissions (default 6 — see fill).
	CC      cc.Config
	MaxRetx int

	// BottleneckBPS is the shared producer↔router link rate in bits/s
	// (default 20 Mbit/s); BottleneckQueue is its tail-drop queue limit
	// (default 20ms). AccessDelay and BackboneDelay are propagation
	// delays (defaults 200µs and 2ms).
	BottleneckBPS   int64
	BottleneckQueue time.Duration
	AccessDelay     time.Duration
	BackboneDelay   time.Duration
	// LossProb adds seeded random loss on the bottleneck's data
	// direction; DownFrom/DownTo schedule a loss window on it (both
	// optional).
	LossProb float64
	DownFrom time.Duration
	DownTo   time.Duration

	// CacheEntries sizes the router content store (default 512; 0 keeps
	// the default, use -1 for no cache). Zipf popularity makes the cache
	// absorb the hot head of the catalog.
	CacheEntries int
	// PITTTL is the router PIT entry lifetime (default 120ms — see fill).
	PITTTL time.Duration

	// IPLoad offers IP background traffic on the data direction of the
	// bottleneck as a fraction of its bandwidth (default 0); IPPacket is
	// the background packet size (default 600 bytes). The IP flows cross
	// the same router and the same queue — mixed NDN+IP on one fabric.
	IPLoad   float64
	IPPacket int

	// Horizon caps virtual time (default 60s).
	Horizon time.Duration
	// Seed makes the run reproducible.
	Seed int64

	// Metrics, when set, receives router verdicts and fetch events.
	Metrics *telemetry.Metrics
	// FetcherObserver, when set, taps every consumer's fetch lifecycle
	// (journey tracing); it receives the consumer id.
	FetcherObserver func(id int) host.FetchObserver
	// BottleneckObserver, when set, observes every transit on the data
	// direction of the bottleneck (journey link spans).
	BottleneckObserver netsim.TransitObserver
}

func (c *FleetConfig) fill() {
	if c.Consumers == 0 {
		c.Consumers = 64
	}
	if c.FlashWindow == 0 {
		c.FlashWindow = 10 * time.Millisecond
	}
	if c.RampWindow == 0 {
		c.RampWindow = time.Second
	}
	if c.Objects == 0 {
		c.Objects = 256
	}
	if c.SegsPerObject == 0 {
		c.SegsPerObject = 8
	}
	if c.SegSize == 0 {
		c.SegSize = 1000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ObjectsPerConsumer == 0 {
		c.ObjectsPerConsumer = 4
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 50 * time.Millisecond
	}
	if c.MaxRetx == 0 {
		// Higher than SegConfig's own default: a retransmitted interest that
		// aggregates onto a stale PIT entry (its data was lost upstream)
		// refreshes that entry without re-forwarding, so a consumer must
		// back off past the PIT TTL before a retransmission punches
		// through. Budget enough attempts for the backoff to get there.
		c.MaxRetx = 6
	}
	if c.BottleneckBPS == 0 {
		c.BottleneckBPS = 20_000_000
	}
	if c.BottleneckQueue == 0 {
		c.BottleneckQueue = 20 * time.Millisecond
	}
	if c.AccessDelay == 0 {
		c.AccessDelay = 200 * time.Microsecond
	}
	if c.BackboneDelay == 0 {
		c.BackboneDelay = 2 * time.Millisecond
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.PITTTL == 0 {
		// Short enough that a backed-off retransmission (MinRTO doubling:
		// 20, 40, 80, 160ms…) finds the stale entry expired and re-forwards;
		// long enough to aggregate a flash crowd's duplicate interests.
		c.PITTTL = 120 * time.Millisecond
	}
	if c.IPPacket == 0 {
		c.IPPacket = 600
	}
	if c.Horizon == 0 {
		c.Horizon = 60 * time.Second
	}
	if c.CC.RTT.InitRTO == 0 {
		// Path-scaled initial RTO: a sane default for a simulated
		// millisecond-RTT fabric (RFC 6298's 1s is built for the WAN).
		c.CC.RTT.InitRTO = 250 * time.Millisecond
	}
	if c.CC.RTT.MinRTO == 0 {
		c.CC.RTT.MinRTO = 10 * time.Millisecond
	}
}

// ConsumerStats is one consumer's outcome.
type ConsumerStats struct {
	ID int
	// Flash marks a flash-crowd consumer (vs steady-state).
	Flash bool
	// StartedAt is the consumer's arrival in virtual time.
	StartedAt time.Duration
	// Objects / Failed count completed and dead-lettered objects.
	Objects int64
	Failed  int64
	// GoodputBytes counts reassembled payload bytes.
	GoodputBytes int64
	// Retransmits and CwndCuts are the consumer's recovery counters.
	Retransmits int64
	CwndCuts    int64
	// Completions are per-object completion latencies.
	Completions []time.Duration
}

// FleetResult aggregates a run.
type FleetResult struct {
	Consumers []ConsumerStats
	// Duration is the virtual time consumed.
	Duration time.Duration
	// ObjectsCompleted / ObjectsFailed / Retransmits / DeadLetters /
	// CwndCuts aggregate the consumer counters.
	ObjectsCompleted int64
	ObjectsFailed    int64
	Retransmits      int64
	DeadLetters      int64
	CwndCuts         int64
	// GoodputBytes is total reassembled payload; GoodputBps normalizes by
	// the active span (first arrival to last completion).
	GoodputBytes int64
	GoodputBps   float64
	// JainIndex is fairness over per-consumer goodput (consumers that
	// completed at least one object or failed trying).
	JainIndex float64
	// P50 / P99 are completion-latency percentiles across all objects.
	P50, P99 time.Duration
	// BottleneckDrops counts tail + fault drops on the data direction;
	// BottleneckBytes its carried bytes. IPDelivered counts background IP
	// packets that crossed the fabric.
	BottleneckDrops int64
	BottleneckBytes int64
	IPDelivered     int64
	// CacheEntriesEnd is the router content-store occupancy at the end.
	CacheEntriesEnd int
}

// Fleet is one constructed fleet scenario: a router, a producer behind a
// shared bottleneck, and the consumer population. Build with NewFleet,
// execute with Run.
type Fleet struct {
	cfg FleetConfig

	Sim     *netsim.Simulator
	Router  *router.Router
	PIT     *pit.Table[uint32]
	CS      *cs.Store[uint32]
	Metrics *telemetry.Metrics
	// Bottleneck is the producer→router (data) direction; Uplink the
	// router→producer (interest) direction.
	Bottleneck *netsim.Endpoint
	Uplink     *netsim.Endpoint

	rng       *rand.Rand
	zipf      *rand.Zipf
	consumers []*fleetConsumer
	impair    *netsim.Impairment
	ipSunk    int64
}

type fleetConsumer struct {
	fl       *Fleet
	stats    ConsumerStats
	fetcher  *host.SegFetcher
	toRouter *netsim.Endpoint
	left     int
	inFlight map[uint32]time.Duration // object base → fetch start
}

// ObjectBase names object k's first segment.
func (c *FleetConfig) ObjectBase(k int) uint32 {
	return NamePrefix + uint32(k*c.SegsPerObject)
}

// NewFleet wires the scenario. The topology is a star: every consumer has
// its own uncontended access link to the router; the router reaches the
// producer (and the IP sink beyond it) over one shared, finite-bandwidth,
// tail-dropping bottleneck — the fabric's point of contention.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg.fill()
	if cfg.Objects*cfg.SegsPerObject > 1<<24 {
		return nil, fmt.Errorf("workload: catalog %d×%d overflows the name prefix",
			cfg.Objects, cfg.SegsPerObject)
	}
	fl := &Fleet{cfg: cfg, Sim: netsim.New(), Metrics: cfg.Metrics}
	if fl.Metrics == nil {
		fl.Metrics = &telemetry.Metrics{}
	}
	fl.rng = rand.New(rand.NewSource(cfg.Seed))
	if cfg.ZipfS > 1 {
		fl.zipf = rand.NewZipf(fl.rng, cfg.ZipfS, 1, uint64(cfg.Objects-1))
	}

	sim := fl.Sim
	fl.PIT = pit.New[uint32](
		pit.WithTTL[uint32](cfg.PITTTL),
		pit.WithClock[uint32](func() time.Time { return time.Unix(0, 0).Add(sim.Now()) }),
	)
	state := ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
		PIT:     fl.PIT,
	}
	if cfg.CacheEntries > 0 {
		fl.CS = cs.New[uint32](cfg.CacheEntries)
		state.ContentStore = fl.CS
	}
	// Port plan: 0 = producer (and IP origin) behind the bottleneck,
	// 1 = IP sink, 2.. = consumers.
	state.NameFIB.AddUint32(NamePrefix, 8, fib.NextHop{Port: 0})
	state.FIB32.AddUint32(uint32(AddrPrefixByte)<<24, 8, fib.NextHop{Port: 0})
	state.FIB32.AddUint32(uint32(ipSinkPrefix)<<24, 8, fib.NextHop{Port: 1})
	fl.Router = router.New(ops.NewRouterRegistry(state), router.Config{
		Name:    "R",
		Metrics: fl.Metrics,
	})
	routerRx := netsim.ReceiverFunc(func(pkt []byte, port int) { fl.Router.HandlePacket(pkt, port) })

	// Producer: answers segment interests with SegSize-byte payloads,
	// sending data back over the shared bottleneck.
	producerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := core.ParseView(pkt)
		if err != nil {
			return
		}
		name, ok := host.InterestName(v)
		if !ok {
			return // background IP traffic terminates here
		}
		reply, err := host.BuildPacket(profiles.NDNData(name), SegPayload(name, fl.cfg.SegSize))
		if err != nil {
			return
		}
		fl.Bottleneck.Send(reply)
	})

	// The bottleneck's data direction carries optional seeded loss and a
	// scheduled loss window.
	var opts []netsim.LinkOption
	if cfg.LossProb > 0 || cfg.DownTo > cfg.DownFrom {
		fl.impair = netsim.NewImpairment(cfg.Seed + 7)
		fl.impair.DropProb = cfg.LossProb
		if cfg.DownTo > cfg.DownFrom {
			fl.impair.DownBetween(cfg.DownFrom, cfg.DownTo)
		}
		opts = append(opts, netsim.WithImpairment(fl.impair))
	}
	opts = append(opts, netsim.WithQueueLimit(cfg.BottleneckQueue))
	if cfg.BottleneckObserver != nil {
		opts = append(opts, netsim.WithTransitObserver(cfg.BottleneckObserver))
	}
	fl.Bottleneck = sim.Pipe(routerRx, 0, cfg.BackboneDelay, cfg.BottleneckBPS, opts...)
	fl.Uplink = sim.Pipe(producerRx, 0, cfg.BackboneDelay, cfg.BottleneckBPS,
		netsim.WithQueueLimit(cfg.BottleneckQueue))
	fl.Router.AttachPort(fl.Uplink) // port 0
	fl.Router.AttachPort(sim.Pipe(netsim.ReceiverFunc(func([]byte, int) { fl.ipSunk++ }),
		0, cfg.AccessDelay, 0)) // port 1: IP sink

	// Consumers.
	total := cfg.Consumers + cfg.FlashConsumers
	fl.consumers = make([]*fleetConsumer, total)
	for i := 0; i < total; i++ {
		c := &fleetConsumer{fl: fl, left: cfg.ObjectsPerConsumer, inFlight: map[uint32]time.Duration{}}
		c.stats.ID = i
		if i >= cfg.Consumers {
			c.stats.Flash = true
			c.left = 1
		}
		port := 2 + i
		fl.Router.AttachPort(sim.Pipe(netsim.ReceiverFunc(func(pkt []byte, _ int) {
			c.fetcher.HandleData(pkt)
		}), 0, cfg.AccessDelay, 0))
		c.toRouter = sim.Pipe(routerRx, port, cfg.AccessDelay, 0)
		segCfg := host.SegConfig{CC: cfg.CC, MaxRetx: cfg.MaxRetx, Metrics: fl.Metrics}
		if cfg.FetcherObserver != nil {
			segCfg.Observer = cfg.FetcherObserver(i)
		}
		c.fetcher = host.NewSegFetcher(sim, func(pkt []byte) { c.toRouter.Send(pkt) }, segCfg)
		c.fetcher.OnObject = c.onObject
		c.fetcher.OnObjectFail = c.onObjectFail
		fl.consumers[i] = c
	}
	return fl, nil
}

// ipSinkPrefix is the first octet of background IP destinations (routed
// out the sink port, distinct from AddrPrefixByte which heads upstream).
const ipSinkPrefix = 11

// SegPayload derives segment name's deterministic SegSize-byte payload:
// name-tagged so reassembly mistakes change bytes, repeatable so goodput
// accounting and verification need no stored corpus.
func SegPayload(name uint32, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte(name>>uint(8*(i%4))) ^ byte(i)
	}
	return out
}

func (c *fleetConsumer) pickObject() (uint32, int) {
	var k int
	if c.fl.zipf != nil {
		k = int(c.fl.zipf.Uint64())
	} else {
		k = c.fl.rng.Intn(c.fl.cfg.Objects)
	}
	return c.fl.cfg.ObjectBase(k), c.fl.cfg.SegsPerObject
}

// start begins the consumer's closed loop at its arrival time.
func (c *fleetConsumer) start() {
	c.stats.StartedAt = c.fl.Sim.Now()
	c.next()
}

func (c *fleetConsumer) next() {
	if c.left <= 0 {
		return
	}
	c.left--
	base, segs := c.pickObject()
	for {
		if _, busy := c.inFlight[base]; !busy {
			break
		}
		// Already fetching that object (possible under Zipf): take the
		// next catalog slot so the closed loop never stalls.
		base, segs = c.fl.cfg.ObjectBase(int(c.fl.rng.Intn(c.fl.cfg.Objects))), c.fl.cfg.SegsPerObject
	}
	c.inFlight[base] = c.fl.Sim.Now()
	c.fetcher.FetchObject(base, segs)
}

func (c *fleetConsumer) onObject(base uint32, data []byte) {
	start, ok := c.inFlight[base]
	if !ok {
		return
	}
	delete(c.inFlight, base)
	c.stats.Objects++
	c.stats.GoodputBytes += int64(len(data))
	c.stats.Completions = append(c.stats.Completions, c.fl.Sim.Now()-start)
	c.scheduleNext()
}

func (c *fleetConsumer) onObjectFail(base uint32) {
	delete(c.inFlight, base)
	c.stats.Failed++
	c.scheduleNext()
}

func (c *fleetConsumer) scheduleNext() {
	if c.left <= 0 {
		return
	}
	think := time.Duration(c.fl.rng.ExpFloat64() * float64(c.fl.cfg.ThinkTime))
	c.fl.Sim.Schedule(think, c.next)
}

// Run schedules arrivals, background traffic, and PIT sweeping, then
// drives virtual time to the horizon and aggregates the outcome.
func (fl *Fleet) Run() *FleetResult {
	cfg := fl.cfg
	sim := fl.Sim

	// Steady-state arrivals spread over the ramp window.
	for i := 0; i < cfg.Consumers; i++ {
		c := fl.consumers[i]
		at := time.Duration(fl.rng.Int63n(int64(cfg.RampWindow)))
		sim.Schedule(at, c.start)
	}
	// Flash crowd: everyone inside FlashWindow at FlashAt.
	for i := cfg.Consumers; i < len(fl.consumers); i++ {
		c := fl.consumers[i]
		at := cfg.FlashAt + time.Duration(fl.rng.Int63n(int64(cfg.FlashWindow)))
		sim.Schedule(at, c.start)
	}

	// IP background load on the data direction of the bottleneck.
	if cfg.IPLoad > 0 {
		interval := time.Duration(float64(cfg.IPPacket*8) / (cfg.IPLoad * float64(cfg.BottleneckBPS)) *
			float64(time.Second))
		if interval <= 0 {
			interval = time.Microsecond
		}
		var pump func()
		pump = func() {
			var src, dst [4]byte
			fl.rng.Read(src[:])
			fl.rng.Read(dst[:])
			dst[0] = ipSinkPrefix
			if pkt, err := host.BuildPacket(profiles.IPv4(src, dst), make([]byte, cfg.IPPacket)); err == nil {
				fl.Bottleneck.Send(pkt)
			}
			sim.Schedule(interval, pump)
		}
		sim.Schedule(0, pump)
	}

	// PIT sweeping keeps abandoned entries from pinning router state.
	cancel := fl.PIT.SweepEvery(sim, cfg.PITTTL, func(n int) {
		for j := 0; j < n; j++ {
			fl.Metrics.RecordEvent(telemetry.EventPITExpired)
		}
	})
	defer cancel()

	sim.RunUntil(cfg.Horizon)
	return fl.result()
}

func (fl *Fleet) result() *FleetResult {
	res := &FleetResult{Duration: fl.Sim.Now(), IPDelivered: fl.ipSunk}
	var all []time.Duration
	var goodputs []float64
	var firstStart, lastDone time.Duration = 1 << 62, 0
	for _, c := range fl.consumers {
		st := c.fetcher.Stats()
		c.stats.Retransmits = st.Retransmits
		c.stats.CwndCuts = st.CwndCuts
		res.Consumers = append(res.Consumers, c.stats)
		res.ObjectsCompleted += c.stats.Objects
		res.ObjectsFailed += c.stats.Failed
		res.Retransmits += st.Retransmits
		res.DeadLetters += st.DeadLettered
		res.CwndCuts += st.CwndCuts
		res.GoodputBytes += c.stats.GoodputBytes
		all = append(all, c.stats.Completions...)
		if c.stats.Objects+c.stats.Failed > 0 {
			goodputs = append(goodputs, float64(c.stats.GoodputBytes))
		}
		if c.stats.StartedAt < firstStart {
			firstStart = c.stats.StartedAt
		}
		for _, d := range c.stats.Completions {
			if at := c.stats.StartedAt + d; at > lastDone {
				lastDone = at
			}
		}
	}
	if span := lastDone - firstStart; span > 0 {
		res.GoodputBps = float64(res.GoodputBytes*8) / span.Seconds()
	}
	res.JainIndex = JainIndex(goodputs)
	res.P50 = CompletionPercentile(all, 0.50)
	res.P99 = CompletionPercentile(all, 0.99)
	res.BottleneckDrops = fl.Bottleneck.TailDrops
	if fl.impair != nil {
		res.BottleneckDrops += fl.impair.Drops + fl.impair.DownDrops
	}
	res.BottleneckBytes = fl.Bottleneck.Bytes
	if fl.CS != nil {
		res.CacheEntriesEnd = fl.CS.Len()
	}
	return res
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²): 1 when all shares are
// equal, →1/n under starvation. Empty or all-zero input reports 1 (nobody
// to be unfair to).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// CompletionPercentile returns the p-quantile of ds (nearest-rank), 0 for
// an empty set. p is clamped to (0, 1].
func CompletionPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if math.IsNaN(p) || p <= 0 {
		p = 1.0 / float64(len(sorted))
	}
	if p > 1 {
		p = 1
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
