// Package cmac implements AES-CMAC (RFC 4493) from scratch on top of the
// standard library's AES block cipher.
//
// The DIP paper chose the 2EM cipher over AES for its Tofino prototype
// because AES required resubmitting the packet (§4.1); this package provides
// the AES side of that comparison (experiment E3 in DESIGN.md) and serves as
// the conservative MAC for OPT tag chains when callers prefer a standard
// construction.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

// BlockSize is the CMAC block and tag size in bytes.
const BlockSize = 16

// MAC computes AES-CMAC over msg. It is stateless and safe for concurrent
// use once constructed.
type MAC struct {
	c      cipher.Block
	k1, k2 [BlockSize]byte
}

// New builds a MAC from a 16-, 24-, or 32-byte AES key.
func New(key []byte) (*MAC, error) {
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}
	m := &MAC{c: c}
	var l [BlockSize]byte
	c.Encrypt(l[:], l[:])
	dbl(&m.k1, &l)
	dbl(&m.k2, &m.k1)
	return m, nil
}

// dbl sets dst to the doubling of src in GF(2^128) per RFC 4493 §2.3.
func dbl(dst, src *[BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[BlockSize-1] ^= 0x87
	}
}

// Sum appends the 16-byte CMAC of msg to dst and returns the result. Sum
// allocates only when dst lacks capacity; passing a 16-capacity buffer keeps
// the OPT hot path allocation-free.
func (m *MAC) Sum(dst, msg []byte) []byte {
	var x, scratch [BlockSize]byte
	n := len(msg)
	full := n / BlockSize
	rem := n % BlockSize
	completeFinal := n > 0 && rem == 0
	bodyBlocks := full
	if completeFinal {
		bodyBlocks--
	}
	for i := 0; i < bodyBlocks; i++ {
		xorBlock(&x, msg[i*BlockSize:])
		m.c.Encrypt(x[:], x[:])
	}
	if completeFinal {
		xorBlock(&x, msg[(full-1)*BlockSize:])
		for i := range x {
			x[i] ^= m.k1[i]
		}
	} else {
		copy(scratch[:], msg[full*BlockSize:])
		scratch[rem] = 0x80
		for i := rem + 1; i < BlockSize; i++ {
			scratch[i] = 0
		}
		for i := range x {
			x[i] ^= scratch[i] ^ m.k2[i]
		}
	}
	m.c.Encrypt(x[:], x[:])
	return append(dst, x[:]...)
}

// SumInto writes the 16-byte CMAC of msg into out (which must be exactly
// BlockSize long) with no allocation.
func (m *MAC) SumInto(out, msg []byte) {
	if len(out) != BlockSize {
		panic("cmac: SumInto requires a 16-byte output")
	}
	tag := m.Sum(out[:0], msg)
	_ = tag // Sum wrote in place because cap(out[:0]) == BlockSize
}

// Verify reports whether tag is the CMAC of msg, in constant time.
func (m *MAC) Verify(msg, tag []byte) bool {
	if len(tag) != BlockSize {
		return false
	}
	var want [BlockSize]byte
	m.SumInto(want[:], msg)
	return subtle.ConstantTimeCompare(want[:], tag) == 1
}

func xorBlock(x *[BlockSize]byte, b []byte) {
	for i := 0; i < BlockSize; i++ {
		x[i] ^= b[i]
	}
}
