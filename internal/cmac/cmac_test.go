package cmac

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (AES-128 key 2b7e1516...).
var rfcKey, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

var rfcMsg, _ = hex.DecodeString(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func TestRFC4493Vectors(t *testing.T) {
	m, err := New(rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, c := range cases {
		got := m.Sum(nil, rfcMsg[:c.n])
		want, _ := hex.DecodeString(c.want)
		if !bytes.Equal(got, want) {
			t.Errorf("CMAC(%d bytes) = %x, want %s", c.n, got, c.want)
		}
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("15-byte key accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := New(make([]byte, 24)); err != nil {
		t.Errorf("AES-192 key rejected: %v", err)
	}
}

func TestSumInto(t *testing.T) {
	m, _ := New(rfcKey)
	var out [BlockSize]byte
	m.SumInto(out[:], rfcMsg[:16])
	want, _ := hex.DecodeString("070a16b46b4d4144f79bdd9dd04a287c")
	if !bytes.Equal(out[:], want) {
		t.Errorf("SumInto = %x", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("SumInto with wrong-size out did not panic")
		}
	}()
	m.SumInto(make([]byte, 8), nil)
}

func TestVerify(t *testing.T) {
	m, _ := New(rfcKey)
	tag := m.Sum(nil, rfcMsg)
	if !m.Verify(rfcMsg, tag) {
		t.Error("valid tag rejected")
	}
	tag[0] ^= 1
	if m.Verify(rfcMsg, tag) {
		t.Error("tampered tag accepted")
	}
	if m.Verify(rfcMsg, tag[:8]) {
		t.Error("short tag accepted")
	}
}

// Property: MACs distinguish messages (no trivial collisions on small edits)
// and are deterministic.
func TestDeterministicAndSensitiveQuick(t *testing.T) {
	m, _ := New(rfcKey)
	f := func(msg []byte, flipAt uint16) bool {
		t1 := m.Sum(nil, msg)
		t2 := m.Sum(nil, msg)
		if !bytes.Equal(t1, t2) {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mod := append([]byte(nil), msg...)
		mod[int(flipAt)%len(mod)] ^= 0x01
		return !bytes.Equal(t1, m.Sum(nil, mod))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: length-extension-style boundary handling — messages of every
// length mod BlockSize produce valid, distinct processing paths.
func TestAllResidues(t *testing.T) {
	m, _ := New(rfcKey)
	seen := map[string]int{}
	msg := make([]byte, 3*BlockSize)
	for i := range msg {
		msg[i] = byte(i)
	}
	for n := 0; n <= len(msg); n++ {
		tag := m.Sum(nil, msg[:n])
		if prev, dup := seen[string(tag)]; dup {
			t.Fatalf("tag collision between lengths %d and %d", prev, n)
		}
		seen[string(tag)] = n
	}
}

func TestSumAppends(t *testing.T) {
	m, _ := New(rfcKey)
	prefix := []byte("hdr:")
	out := m.Sum(prefix, rfcMsg[:16])
	if !bytes.HasPrefix(out, prefix) || len(out) != len(prefix)+BlockSize {
		t.Errorf("Sum append misbehaved: %x", out)
	}
}

func BenchmarkSum52B(b *testing.B) {
	// 52 bytes = the 416-bit OPT MAC input region.
	m, _ := New(rfcKey)
	msg := make([]byte, 52)
	var out [BlockSize]byte
	b.ReportAllocs()
	b.SetBytes(52)
	for i := 0; i < b.N; i++ {
		m.SumInto(out[:], msg)
	}
}
