package host

import (
	"testing"
	"time"

	"dip/internal/core"
	"dip/internal/netsim"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

func dataPacket(t *testing.T, name uint32, payload string) []byte {
	t.Helper()
	pkt, err := BuildPacket(profiles.NDNData(name), []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestFetcherCompletesWithoutLoss(t *testing.T) {
	sim := netsim.New()
	var sent [][]byte
	f := NewFetcher(sim, func(p []byte) { sent = append(sent, append([]byte(nil), p...)) }, FetchConfig{})
	var gotName uint32
	var gotPayload string
	f.OnComplete = func(n uint32, p []byte) { gotName, gotPayload = n, string(p) }

	if err := f.Fetch(0xAA000001); err != nil {
		t.Fatal(err)
	}
	// Data arrives well before the first timeout.
	sim.Schedule(time.Millisecond, func() { f.HandleData(dataPacket(t, 0xAA000001, "hello")) })
	sim.Run()

	st := f.Stats()
	if st.Completed != 1 || st.Retransmits != 0 || st.Pending != 0 || st.DeadLettered != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(sent) != 1 {
		t.Errorf("sent %d interests, want 1", len(sent))
	}
	if gotName != 0xAA000001 || gotPayload != "hello" {
		t.Errorf("completion %#x %q", gotName, gotPayload)
	}
}

func TestFetcherRetransmitsWithBackoff(t *testing.T) {
	sim := netsim.New()
	var sentAt []time.Duration
	metrics := &telemetry.Metrics{}
	f := NewFetcher(sim, func(p []byte) { sentAt = append(sentAt, sim.Now()) },
		FetchConfig{Timeout: 10 * time.Millisecond, Backoff: 2, MaxRetx: 3, Metrics: metrics})

	if err := f.Fetch(1); err != nil {
		t.Fatal(err)
	}
	// Satisfy after two losses: data shows up at 35ms, between the second
	// retransmission (10+20=30ms) and the third (30+40=70ms).
	sim.Schedule(35*time.Millisecond, func() { f.HandleData(dataPacket(t, 1, "late")) })
	sim.Run()

	want := []time.Duration{0, 10 * time.Millisecond, 30 * time.Millisecond}
	if len(sentAt) != len(want) {
		t.Fatalf("transmissions at %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Fatalf("transmissions at %v, want %v (exponential backoff)", sentAt, want)
		}
	}
	st := f.Stats()
	if st.Completed != 1 || st.Retransmits != 2 {
		t.Errorf("stats %+v", st)
	}
	if metrics.Event(telemetry.EventRetransmit) != 2 {
		t.Errorf("telemetry retransmits %d", metrics.Event(telemetry.EventRetransmit))
	}
}

func TestFetcherDeadLettersAfterCap(t *testing.T) {
	sim := netsim.New()
	sent := 0
	metrics := &telemetry.Metrics{}
	f := NewFetcher(sim, func([]byte) { sent++ },
		FetchConfig{Timeout: time.Millisecond, MaxRetx: 2, Metrics: metrics})
	var dead []uint32
	f.OnDeadLetter = func(n uint32) { dead = append(dead, n) }

	f.Fetch(7)
	sim.Run() // nothing ever answers

	if sent != 3 { // 1 initial + 2 retransmissions
		t.Errorf("sent %d, want 3", sent)
	}
	st := f.Stats()
	if st.DeadLettered != 1 || st.Pending != 0 || st.Completed != 0 {
		t.Errorf("stats %+v", st)
	}
	if len(dead) != 1 || dead[0] != 7 {
		t.Errorf("dead letters %v", dead)
	}
	if got := f.DeadLetters(); len(got) != 1 || got[0] != 7 {
		t.Errorf("DeadLetters() %v", got)
	}
	if metrics.Event(telemetry.EventDeadLetter) != 1 {
		t.Errorf("telemetry dead letters %d", metrics.Event(telemetry.EventDeadLetter))
	}
	if sim.Pending() != 0 {
		t.Errorf("%d timers still armed after dead-letter", sim.Pending())
	}
}

func TestFetcherTimeoutCap(t *testing.T) {
	sim := netsim.New()
	var sentAt []time.Duration
	f := NewFetcher(sim, func([]byte) { sentAt = append(sentAt, sim.Now()) },
		FetchConfig{Timeout: 100 * time.Millisecond, Backoff: 10, MaxTimeout: 200 * time.Millisecond, MaxRetx: 2})
	f.Fetch(9)
	sim.Run()
	// 0, then +100ms, then +200ms (capped, not 1s).
	want := []time.Duration{0, 100 * time.Millisecond, 300 * time.Millisecond}
	for i := range want {
		if i >= len(sentAt) || sentAt[i] != want[i] {
			t.Fatalf("transmissions at %v, want %v (MaxTimeout cap)", sentAt, want)
		}
	}
}

// A pathologically large Backoff must clamp to MaxTimeout, not overflow
// time.Duration: float64(timeout)*Backoff can exceed MaxInt64, and the
// float→Duration conversion is not saturating. Regression for the clamp
// now happening before the multiply.
func TestFetcherHugeBackoffClampsWithoutOverflow(t *testing.T) {
	sim := netsim.New()
	var sentAt []time.Duration
	f := NewFetcher(sim, func([]byte) { sentAt = append(sentAt, sim.Now()) },
		FetchConfig{Timeout: time.Second, Backoff: 1e18, MaxTimeout: 2 * time.Second, MaxRetx: 3})
	f.Fetch(9)
	sim.Run()
	want := []time.Duration{0, time.Second, 3 * time.Second, 5 * time.Second}
	if len(sentAt) != len(want) {
		t.Fatalf("transmissions at %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Fatalf("transmissions at %v, want %v (overflow instead of clamp?)", sentAt, want)
		}
	}
}

// Backoff values below 1 would retransmit faster and faster; fill() must
// clamp them to no-growth.
func TestFetcherFractionalBackoffClampedToOne(t *testing.T) {
	sim := netsim.New()
	var sentAt []time.Duration
	f := NewFetcher(sim, func([]byte) { sentAt = append(sentAt, sim.Now()) },
		FetchConfig{Timeout: 100 * time.Millisecond, Backoff: 0.25, MaxRetx: 2})
	f.Fetch(9)
	sim.Run()
	want := []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(sentAt) != len(want) {
		t.Fatalf("transmissions at %v, want %v", sentAt, want)
	}
	for i := range want {
		if sentAt[i] != want[i] {
			t.Fatalf("transmissions at %v, want %v (Backoff<1 not clamped)", sentAt, want)
		}
	}
}

func TestFetcherIgnoresUnrelatedAndDuplicateData(t *testing.T) {
	sim := netsim.New()
	f := NewFetcher(sim, func([]byte) {}, FetchConfig{})
	completions := 0
	f.OnComplete = func(uint32, []byte) { completions++ }
	f.Fetch(5)

	if _, matched := f.HandleData(dataPacket(t, 6, "other")); matched {
		t.Error("matched data for a name never fetched")
	}
	if _, matched := f.HandleData([]byte{0xFF, 0x01}); matched {
		t.Error("matched garbage")
	}
	if _, matched := f.HandleData(dataPacket(t, 5, "x")); !matched {
		t.Error("real data not matched")
	}
	// The network re-delivers (duplicate or reordered copy): no double
	// completion.
	if _, matched := f.HandleData(dataPacket(t, 5, "x")); matched {
		t.Error("duplicate data matched twice")
	}
	if completions != 1 {
		t.Errorf("completions %d", completions)
	}
	sim.Run()
	if st := f.Stats(); st.Retransmits != 0 || st.Completed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestFetcherFetchWhileInFlightAggregates(t *testing.T) {
	sim := netsim.New()
	sent := 0
	f := NewFetcher(sim, func([]byte) { sent++ }, FetchConfig{})
	f.Fetch(3)
	f.Fetch(3) // aggregates: no second transmission, no second timer chain
	if sent != 1 {
		t.Errorf("sent %d, want 1", sent)
	}
	f.HandleData(dataPacket(t, 3, "d"))
	sim.Run()
	if st := f.Stats(); st.Completed != 1 || st.DeadLettered != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestFetcherCancel(t *testing.T) {
	sim := netsim.New()
	f := NewFetcher(sim, func([]byte) {}, FetchConfig{Timeout: time.Millisecond, MaxRetx: 1})
	f.Fetch(4)
	if !f.Cancel(4) || f.Cancel(4) {
		t.Error("cancel semantics wrong")
	}
	sim.Run()
	if st := f.Stats(); st.Retransmits != 0 || st.DeadLettered != 0 {
		t.Errorf("cancelled fetch still ran: %+v", st)
	}
}

func TestNameHelpers(t *testing.T) {
	data := dataPacket(t, 0xBB0000CC, "p")
	v, err := core.ParseView(data)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := DataName(v); !ok || n != 0xBB0000CC {
		t.Errorf("DataName = %#x, %v", n, ok)
	}
	if _, ok := InterestName(v); ok {
		t.Error("InterestName matched a data packet")
	}
	interest, err := BuildPacket(profiles.NDNInterest(0x11223344), nil)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := core.ParseView(interest)
	if n, ok := InterestName(iv); !ok || n != 0x11223344 {
		t.Errorf("InterestName = %#x, %v", n, ok)
	}
}
