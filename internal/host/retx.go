// Interest retransmission: the consumer half of NDN's recovery story. NDN
// routers drop data with no pending interest and PIT entries expire, so loss
// anywhere on the path is repaired end-to-end by the consumer re-expressing
// the interest (stateful forwarding: the retransmission re-arms PIT state
// hop by hop). The Fetcher tracks every outstanding name with a per-name
// timeout, exponential backoff, a retransmission cap, and dead-letter
// accounting for names it gave up on.
package host

import (
	"sync"
	"time"

	"dip/internal/core"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

// Clock is the virtual- or real-time scheduler the Fetcher arms its
// timeouts on. netsim.Simulator satisfies it directly, which keeps chaos
// runs deterministic.
type Clock interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn func())
}

// FetchConfig tunes the retransmission machinery. Zero values select the
// defaults noted on each field.
type FetchConfig struct {
	// Timeout is the initial retransmission timeout (default 50ms).
	Timeout time.Duration
	// Backoff multiplies the timeout after every retransmission (default 2).
	Backoff float64
	// MaxTimeout caps the backed-off timeout (default 1s).
	MaxTimeout time.Duration
	// MaxRetx bounds retransmissions per name (default 4, so at most five
	// transmissions total before the name is dead-lettered).
	MaxRetx int
	// Metrics, when set, receives EventRetransmit / EventDeadLetter.
	Metrics *telemetry.Metrics
	// Observer, when set, receives every fetch lifecycle event (journey
	// tracing). Called outside the Fetcher's lock; must not block.
	Observer FetchObserver
}

// FetchEvent classifies one fetch lifecycle action.
type FetchEvent uint8

// Fetch lifecycle events.
const (
	// FetchSend: first transmission of a name's interest.
	FetchSend FetchEvent = iota
	// FetchRetx: a retransmission of a pending name's interest.
	FetchRetx
	// FetchSatisfy: data arrived for a pending name.
	FetchSatisfy
	// FetchDeadLetter: the name was abandoned after the retransmission cap
	// (pkt is nil — there is no packet, which is the point).
	FetchDeadLetter
	// FetchCwndCut: the congestion controller multiplicatively decreased
	// its window in response to a timeout on this name (SegFetcher only;
	// pkt is nil). Journey tracing freezes the triggering journey so the
	// decrease is attributable after the fact.
	FetchCwndCut
)

// FetchObserver receives fetch lifecycle events. pkt is the interest just
// sent (FetchSend/FetchRetx) or the data packet that satisfied the name
// (FetchSatisfy); it is valid only during the call.
type FetchObserver func(ev FetchEvent, name uint32, pkt []byte)

func (c *FetchConfig) fill() {
	if c.Timeout == 0 {
		c.Timeout = 50 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	} else if c.Backoff < 1 {
		// A shrinking timeout would retransmit faster and faster into a
		// congested path; clamp to no-growth rather than silently
		// misbehaving.
		c.Backoff = 1
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = time.Second
	}
	if c.MaxRetx == 0 {
		c.MaxRetx = 4
	}
}

type fetchState struct {
	gen      uint64 // invalidates timers armed for an earlier fetch of the name
	attempts int    // transmissions so far
	timeout  time.Duration
}

// FetchStats is a snapshot of the Fetcher's counters.
type FetchStats struct {
	Pending      int
	Completed    int64
	Retransmits  int64
	DeadLettered int64
}

// Fetcher issues interests and retransmits them until data arrives, the
// retransmission cap is hit, or Cancel is called. Safe for concurrent use;
// with a single-goroutine netsim clock it is fully deterministic.
type Fetcher struct {
	clock Clock
	send  func(pkt []byte)
	cfg   FetchConfig

	// OnComplete, when set, is called (outside the lock) with each name's
	// payload the first time its data arrives.
	OnComplete func(name uint32, payload []byte)
	// OnDeadLetter, when set, is called (outside the lock) for each name
	// abandoned after the retransmission cap.
	OnDeadLetter func(name uint32)

	mu           sync.Mutex
	gen          uint64
	pending      map[uint32]*fetchState
	completed    int64
	retransmits  int64
	deadLettered int64
	deadLetters  []uint32
}

// NewFetcher builds a Fetcher that transmits packets through send and arms
// timeouts on clock.
func NewFetcher(clock Clock, send func(pkt []byte), cfg FetchConfig) *Fetcher {
	cfg.fill()
	return &Fetcher{clock: clock, send: send, cfg: cfg, pending: map[uint32]*fetchState{}}
}

// Fetch expresses an interest for name and arms its retransmission timer.
// A name already in flight is left alone (the pending timer keeps driving
// it), mirroring PIT aggregation on the consumer side.
func (f *Fetcher) Fetch(name uint32) error {
	f.mu.Lock()
	if _, inFlight := f.pending[name]; inFlight {
		f.mu.Unlock()
		return nil
	}
	f.gen++
	st := &fetchState{gen: f.gen, attempts: 1, timeout: f.cfg.Timeout}
	f.pending[name] = st
	gen := st.gen
	timeout := st.timeout
	f.mu.Unlock()

	pkt, err := BuildPacket(profiles.NDNInterest(name), nil)
	if err != nil {
		f.mu.Lock()
		delete(f.pending, name)
		f.mu.Unlock()
		return err
	}
	f.send(pkt)
	if f.cfg.Observer != nil {
		f.cfg.Observer(FetchSend, name, pkt)
	}
	f.clock.Schedule(timeout, func() { f.onTimeout(name, gen) })
	return nil
}

func (f *Fetcher) onTimeout(name uint32, gen uint64) {
	f.mu.Lock()
	st, ok := f.pending[name]
	if !ok || st.gen != gen {
		f.mu.Unlock()
		return // satisfied or cancelled since the timer was armed
	}
	if st.attempts > f.cfg.MaxRetx {
		delete(f.pending, name)
		f.deadLettered++
		f.deadLetters = append(f.deadLetters, name)
		cb := f.OnDeadLetter
		f.mu.Unlock()
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.RecordEvent(telemetry.EventDeadLetter)
		}
		if f.cfg.Observer != nil {
			f.cfg.Observer(FetchDeadLetter, name, nil)
		}
		if cb != nil {
			cb(name)
		}
		return
	}
	st.attempts++
	// Clamp against MaxTimeout before the multiply: a large Backoff can
	// push float64(timeout)*Backoff past MaxInt64, and converting an
	// out-of-range float to time.Duration is not a saturating operation.
	if next := float64(st.timeout) * f.cfg.Backoff; next >= float64(f.cfg.MaxTimeout) {
		st.timeout = f.cfg.MaxTimeout
	} else {
		st.timeout = time.Duration(next)
	}
	timeout := st.timeout
	f.retransmits++
	f.mu.Unlock()

	if f.cfg.Metrics != nil {
		f.cfg.Metrics.RecordEvent(telemetry.EventRetransmit)
	}
	if pkt, err := BuildPacket(profiles.NDNInterest(name), nil); err == nil {
		f.send(pkt)
		if f.cfg.Observer != nil {
			f.cfg.Observer(FetchRetx, name, pkt)
		}
	}
	f.clock.Schedule(timeout, func() { f.onTimeout(name, gen) })
}

// HandleData inspects a received packet; if it is an NDN data packet for a
// pending name the fetch completes and matched is true. Duplicate data for
// an already-satisfied name returns false (no double completion).
func (f *Fetcher) HandleData(pkt []byte) (name uint32, matched bool) {
	v, err := core.ParseView(pkt)
	if err != nil {
		return 0, false
	}
	name, ok := DataName(v)
	if !ok {
		return 0, false
	}
	f.mu.Lock()
	if _, pending := f.pending[name]; !pending {
		f.mu.Unlock()
		return name, false
	}
	delete(f.pending, name)
	f.completed++
	cb := f.OnComplete
	f.mu.Unlock()
	if f.cfg.Observer != nil {
		f.cfg.Observer(FetchSatisfy, name, pkt)
	}
	if cb != nil {
		cb(name, v.Payload())
	}
	return name, true
}

// Cancel abandons a pending fetch (without dead-letter accounting),
// reporting whether it was in flight.
func (f *Fetcher) Cancel(name uint32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.pending[name]; !ok {
		return false
	}
	delete(f.pending, name)
	return true
}

// Stats snapshots the counters.
func (f *Fetcher) Stats() FetchStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FetchStats{
		Pending:      len(f.pending),
		Completed:    f.completed,
		Retransmits:  f.retransmits,
		DeadLettered: f.deadLettered,
	}
}

// DeadLetters returns the names abandoned so far, in order.
func (f *Fetcher) DeadLetters() []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint32(nil), f.deadLetters...)
}

// DataName extracts the 32-bit content name from an NDN data packet (an
// F_PIT FN whose operand leads the locations region), reporting ok=false
// for any other profile.
func DataName(v core.View) (uint32, bool) {
	return nameByKey(v, core.KeyPIT)
}

// InterestName is DataName's counterpart for interest packets (F_FIB).
func InterestName(v core.View) (uint32, bool) {
	return nameByKey(v, core.KeyFIB)
}

func nameByKey(v core.View, key core.Key) (uint32, bool) {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Key == key && fn.Len == 32 && fn.Loc%8 == 0 {
			locs := v.Locations()
			off := int(fn.Loc) / 8
			if off+4 <= len(locs) {
				return uint32(locs[off])<<24 | uint32(locs[off+1])<<16 |
					uint32(locs[off+2])<<8 | uint32(locs[off+3]), true
			}
		}
	}
	return 0, false
}
