// Package host implements the DIP host stack: constructing packets from
// protocol profiles, negotiating OPT sessions, executing host-tagged FNs
// (F_ver) on received packets, and reacting to FN-unsupported notifications
// from heterogeneous domains (§2.3–2.4).
package host

import (
	"fmt"
	"sync"

	"dip/internal/core"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/profiles"
)

// SessionMap is a thread-safe ops.SessionStore hosts keep their negotiated
// OPT sessions in.
type SessionMap struct {
	mu sync.RWMutex
	m  map[[16]byte]*opt.Session
}

// NewSessionMap returns an empty store.
func NewSessionMap() *SessionMap {
	return &SessionMap{m: make(map[[16]byte]*opt.Session)}
}

// Add records a negotiated session.
func (s *SessionMap) Add(sess *opt.Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[sess.ID] = sess
}

// LookupSession implements ops.SessionStore.
func (s *SessionMap) LookupSession(id []byte) (*opt.Session, bool) {
	var k [16]byte
	copy(k[:], id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.m[k]
	return sess, ok
}

// RxKind classifies what a host received.
type RxKind uint8

// Receive outcomes.
const (
	// RxDelivered: the packet passed all host operations; Payload is valid.
	RxDelivered RxKind = iota
	// RxRejected: a host operation dropped the packet (verification failed).
	RxRejected
	// RxFNUnsupported: a router on the path reported it cannot run Key.
	RxFNUnsupported
	// RxMalformed: the packet failed to parse.
	RxMalformed
)

// String names the outcome.
func (k RxKind) String() string {
	switch k {
	case RxDelivered:
		return "delivered"
	case RxRejected:
		return "rejected"
	case RxFNUnsupported:
		return "fn-unsupported"
	case RxMalformed:
		return "malformed"
	}
	return "rx(?)"
}

// Rx is the outcome of Stack.HandlePacket.
type Rx struct {
	Kind    RxKind
	Payload []byte          // valid for RxDelivered
	Reason  core.DropReason // valid for RxRejected
	Key     core.Key        // valid for RxFNUnsupported
	View    core.View       // valid except for RxMalformed
}

// Stack is a DIP host: it runs host-tagged FNs over received packets.
type Stack struct {
	Sessions *SessionMap
	engine   *core.Engine
}

// NewStack builds a host stack with a fresh session store.
func NewStack() *Stack {
	s := &Stack{Sessions: NewSessionMap()}
	reg := ops.NewHostRegistry(ops.Config{Sessions: s.Sessions})
	s.engine = core.NewHostEngine(reg, core.Limits{})
	return s
}

// SetRecorder installs rec as the host engine's telemetry sink (per-op
// latency and drop accounting for the host-tagged FNs). A sampling trace
// recorder works here exactly as on a router.
func (s *Stack) SetRecorder(rec core.Recorder) { s.engine.SetRecorder(rec) }

// HandlePacket processes one received packet through the host side of
// Algorithm 1 (only host-tagged FNs execute).
func (s *Stack) HandlePacket(pkt []byte) Rx {
	v, err := core.ParseView(pkt)
	if err != nil {
		return Rx{Kind: RxMalformed}
	}
	if key, ok := profiles.ParseFNUnsupported(v); ok {
		return Rx{Kind: RxFNUnsupported, Key: key, View: v}
	}
	var ctx core.ExecContext
	ctx.Reset(v, 0)
	s.engine.Process(&ctx)
	if ctx.Verdict == core.VerdictDrop {
		return Rx{Kind: RxRejected, Reason: ctx.Reason, View: v}
	}
	return Rx{Kind: RxDelivered, Payload: v.Payload(), View: v}
}

// BuildPacket serializes a profile header plus payload into a wire packet.
func BuildPacket(h *core.Header, payload []byte) ([]byte, error) {
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(payload)))
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	return append(buf, payload...), nil
}
