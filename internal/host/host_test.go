package host

import (
	"bytes"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/netsim"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/router"
)

func TestSessionMap(t *testing.T) {
	sm := NewSessionMap()
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{1}, 16))
	sv, _ := drkey.NewSecretValue("r", bytes.Repeat([]byte{2}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, []opt.HopConfig{{Secret: sv}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	sm.Add(sess)
	got, ok := sm.LookupSession(sess.ID[:])
	if !ok || got != sess {
		t.Error("lookup failed")
	}
	if _, ok := sm.LookupSession(make([]byte, 16)); ok {
		t.Error("phantom session")
	}
}

func TestHandlePacketPlainDelivery(t *testing.T) {
	s := NewStack()
	b, err := BuildPacket(profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	rx := s.HandlePacket(b)
	if rx.Kind != RxDelivered || !bytes.Equal(rx.Payload, []byte("data")) {
		t.Errorf("rx %v payload %q", rx.Kind, rx.Payload)
	}
}

func TestHandlePacketMalformed(t *testing.T) {
	s := NewStack()
	if rx := s.HandlePacket([]byte{1}); rx.Kind != RxMalformed {
		t.Errorf("rx %v", rx.Kind)
	}
}

func TestHandlePacketFNUnsupported(t *testing.T) {
	s := NewStack()
	msg, err := profiles.BuildFNUnsupported([]byte{10, 0, 0, 1}, core.KeyMAC)
	if err != nil {
		t.Fatal(err)
	}
	rx := s.HandlePacket(msg)
	if rx.Kind != RxFNUnsupported || rx.Key != core.KeyMAC {
		t.Errorf("rx %v key %v", rx.Kind, rx.Key)
	}
}

func TestHandlePacketVerification(t *testing.T) {
	s := NewStack()
	sv, _ := drkey.NewSecretValue("r", bytes.Repeat([]byte{2}, 16))
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{1}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, []opt.HopConfig{{Secret: sv}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	s.Sessions.Add(sess)

	payload := []byte("verified payload")
	h, err := profiles.OPT(sess, payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPacket(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the single hop's processing directly on the locations.
	v, _ := core.ParseView(b)
	if err := opt.ProcessHop(opt.HopConfig{Secret: sv}, opt.Kind2EM, v.Locations()); err != nil {
		t.Fatal(err)
	}
	rx := s.HandlePacket(b)
	if rx.Kind != RxDelivered {
		t.Fatalf("rx %v reason %v", rx.Kind, rx.Reason)
	}

	// A packet that skipped the hop is rejected.
	h2, _ := profiles.OPT(sess, payload, 1)
	b2, _ := BuildPacket(h2, payload)
	rx = s.HandlePacket(b2)
	if rx.Kind != RxRejected || rx.Reason != core.DropVerifyFailed {
		t.Errorf("unprocessed packet: %v/%v", rx.Kind, rx.Reason)
	}
}

// End-to-end: consumer ↔ R1 ↔ R2 ↔ producer over the simulator, running the
// DIP-realized NDN exchange with PIT state at both routers.
func TestEndToEndNDNOverSimulator(t *testing.T) {
	sim := netsim.New()
	const name = uint32(0xAA000001)

	newNDNRouter := func(upstreamPort int) (*router.Router, ops.Config) {
		cfg := ops.Config{NameFIB: fib.New(), PIT: pit.New[uint32]()}
		cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: upstreamPort})
		r := router.New(ops.NewRouterRegistry(cfg), router.Config{})
		return r, cfg
	}

	// Topology: consumer -(p0)- R1 -(p1)- R2 -(p1)- producer
	r1, _ := newNDNRouter(1)
	r2, _ := newNDNRouter(1)

	var consumerGot []byte
	consumer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := core.ParseView(pkt)
		if err != nil {
			t.Errorf("consumer parse: %v", err)
			return
		}
		consumerGot = append([]byte(nil), v.Payload()...)
	})

	var producerRouter *router.Router
	producer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		// The producer answers any interest with a data packet.
		v, err := core.ParseView(pkt)
		if err != nil || v.FNNum() == 0 || v.FN(0).Key != core.KeyFIB {
			t.Errorf("producer got unexpected packet: %v", err)
			return
		}
		reply, err := BuildPacket(profiles.NDNData(name), []byte("the movie bits"))
		if err != nil {
			t.Fatal(err)
		}
		// Send back into R2 on its producer-facing port.
		sim.Schedule(0, func() { producerRouter.HandlePacket(reply, 1) })
	})

	// Wire: R1 port0 → consumer, R1 port1 → R2 port0; R2 port1 → producer.
	r1.AttachPort(sim.Pipe(consumer, 0, 1, 0))
	r1.AttachPort(sim.Pipe(netsim.ReceiverFunc(r2.HandlePacket), 0, 1, 0))
	r2.AttachPort(sim.Pipe(netsim.ReceiverFunc(r1.HandlePacket), 1, 1, 0))
	r2.AttachPort(sim.Pipe(producer, 0, 1, 0))
	producerRouter = r2

	interest, err := BuildPacket(profiles.NDNInterest(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.Schedule(0, func() { r1.HandlePacket(interest, 0) })
	sim.Run()

	if !bytes.Equal(consumerGot, []byte("the movie bits")) {
		t.Fatalf("consumer got %q", consumerGot)
	}
}

// End-to-end NDN+OPT: the derived protocol over a 2-router path. The data
// packet's tags are updated by both routers and the consumer's F_ver
// accepts the authentic delivery but rejects a tampered one.
func TestEndToEndNDNOPTSecureDelivery(t *testing.T) {
	sim := netsim.New()
	const name = uint32(0xBB000001)

	sv1, _ := drkey.NewSecretValue("r1", bytes.Repeat([]byte{0x11}, 16))
	sv2, _ := drkey.NewSecretValue("r2", bytes.Repeat([]byte{0x22}, 16))
	dstSecret, _ := drkey.NewSecretValue("consumer", bytes.Repeat([]byte{0xCC}, 16))

	// Key negotiation: the consumer learns both hop keys. Note the path
	// order of the DATA packet: producer → R2 → R1 → consumer.
	sess, err := opt.NewSession(opt.Kind2EM, []opt.HopConfig{
		{Secret: sv2, HopIndex: 0},
		{Secret: sv1, HopIndex: 1},
	}, dstSecret)
	if err != nil {
		t.Fatal(err)
	}

	consumerStack := NewStack()
	consumerStack.Sessions.Add(sess)

	mkRouter := func(sv *drkey.SecretValue, hopIndex uint8, upstreamPort int) *router.Router {
		cfg := ops.Config{
			NameFIB:  fib.New(),
			PIT:      pit.New[uint32](),
			Secret:   sv,
			MACKind:  opt.Kind2EM,
			HopIndex: hopIndex,
		}
		cfg.NameFIB.AddUint32(0xBB000000, 8, fib.NextHop{Port: upstreamPort})
		return router.New(ops.NewRouterRegistry(cfg), router.Config{})
	}
	r1 := mkRouter(sv1, 1, 1)
	r2 := mkRouter(sv2, 0, 1)

	var rx *Rx
	consumer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		got := consumerStack.HandlePacket(pkt)
		rx = &got
	})

	payload := []byte("secure content")
	producer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		h, err := profiles.NDNOPTData(sess, name, payload, 1234)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := BuildPacket(h, payload)
		if err != nil {
			t.Fatal(err)
		}
		sim.Schedule(0, func() { r2.HandlePacket(reply, 1) })
	})

	r1.AttachPort(sim.Pipe(consumer, 0, 1, 0))
	r1.AttachPort(sim.Pipe(netsim.ReceiverFunc(r2.HandlePacket), 0, 1, 0))
	r2.AttachPort(sim.Pipe(netsim.ReceiverFunc(r1.HandlePacket), 1, 1, 0))
	r2.AttachPort(sim.Pipe(producer, 0, 1, 0))

	interest, _ := BuildPacket(profiles.NDNInterest(name), nil)
	sim.Schedule(0, func() { r1.HandlePacket(interest, 0) })
	sim.Run()

	if rx == nil {
		t.Fatal("consumer received nothing")
	}
	if rx.Kind != RxDelivered {
		t.Fatalf("verification failed: %v/%v", rx.Kind, rx.Reason)
	}
	if !bytes.Equal(rx.Payload, payload) {
		t.Errorf("payload %q", rx.Payload)
	}

	// Now a man-in-the-middle flips a payload bit between R2 and R1: the
	// consumer must reject. Rebuild with a tampering pipe.
	simT := netsim.New()
	r1t := mkRouter(sv1, 1, 1)
	r2t := mkRouter(sv2, 0, 1)
	var rxT *Rx
	consumerT := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		got := consumerStack.HandlePacket(pkt)
		rxT = &got
	})
	producerT := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		h, _ := profiles.NDNOPTData(sess, name, payload, 1234)
		reply, _ := BuildPacket(h, payload)
		simT.Schedule(0, func() { r2t.HandlePacket(reply, 1) })
	})
	tamper := netsim.ReceiverFunc(func(pkt []byte, port int) {
		cp := append([]byte(nil), pkt...)
		cp[len(cp)-1] ^= 0x01 // flip a payload bit mid-path
		r1t.HandlePacket(cp, port)
	})
	r1t.AttachPort(simT.Pipe(consumerT, 0, 1, 0))
	r1t.AttachPort(simT.Pipe(netsim.ReceiverFunc(r2t.HandlePacket), 0, 1, 0))
	r2t.AttachPort(simT.Pipe(tamper, 1, 1, 0))
	r2t.AttachPort(simT.Pipe(producerT, 0, 1, 0))

	interest2, _ := BuildPacket(profiles.NDNInterest(name), nil)
	simT.Schedule(0, func() { r1t.HandlePacket(interest2, 0) })
	simT.Run()

	if rxT == nil {
		t.Fatal("consumer received nothing (tamper run)")
	}
	if rxT.Kind != RxRejected || rxT.Reason != core.DropVerifyFailed {
		t.Errorf("tampered delivery accepted: %v/%v", rxT.Kind, rxT.Reason)
	}
}

func TestRxKindString(t *testing.T) {
	if RxDelivered.String() != "delivered" || RxKind(99).String() != "rx(?)" {
		t.Error("RxKind strings")
	}
}
