package host

// Reassembly is the in-order segment buffer behind SegFetcher: segments
// arrive in any order (the pipeline reorders freely, impaired links
// duplicate), and the object's bytes are the segments concatenated in
// segment order. First write wins — a duplicate or conflicting late copy
// never changes already-accepted bytes — and out-of-range segment indices
// are ignored rather than trusted. Payloads are copied in, so callers may
// reuse their receive buffers.
type Reassembly struct {
	segs  [][]byte
	have  []bool
	got   int
	bytes int
}

// NewReassembly returns a buffer for an object of total segments
// (total ≤ 0 is treated as one segment).
func NewReassembly(total int) *Reassembly {
	if total <= 0 {
		total = 1
	}
	return &Reassembly{segs: make([][]byte, total), have: make([]bool, total)}
}

// Total returns the segment count the buffer was sized for.
func (r *Reassembly) Total() int { return len(r.segs) }

// Got returns how many distinct segments have been accepted.
func (r *Reassembly) Got() int { return r.got }

// Have reports whether segment seg has been accepted.
func (r *Reassembly) Have(seg int) bool {
	return seg >= 0 && seg < len(r.have) && r.have[seg]
}

// Add accepts segment seg's payload (copied), reporting whether it was
// stored: false for out-of-range indices and duplicates. An empty payload
// is a valid zero-length segment.
func (r *Reassembly) Add(seg int, payload []byte) bool {
	if seg < 0 || seg >= len(r.segs) || r.have[seg] {
		return false
	}
	r.segs[seg] = append([]byte(nil), payload...)
	r.have[seg] = true
	r.got++
	r.bytes += len(payload)
	return true
}

// Complete reports whether every segment has been accepted.
func (r *Reassembly) Complete() bool { return r.got == len(r.segs) }

// Bytes returns the object payload — all segments concatenated in segment
// order — or nil while any segment is missing.
func (r *Reassembly) Bytes() []byte {
	if !r.Complete() {
		return nil
	}
	out := make([]byte, 0, r.bytes)
	for _, s := range r.segs {
		out = append(out, s...)
	}
	return out
}
