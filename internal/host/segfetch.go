// Segmented, congestion-controlled fetch: the consumer half of a
// multi-packet object transfer. Objects are named ranges — segment i of
// object base is the content name base+i (`/name/seg=i` in NDN terms,
// realized in the 32-bit name space by giving objects disjoint name
// strides) — fetched with up to cwnd interests pipelined in flight, where
// cwnd comes from a per-flow congestion controller (internal/cc): RTT-
// adaptive RTO with Karn's rule, additive increase on satisfy,
// multiplicative decrease on genuine timeout. This replaces "retry until
// dead" with "degrade proportionally": when a shared bottleneck drops
// packets, the window shrinks and the retransmission timer backs off
// adaptively instead of blasting a fixed schedule into the loss.
package host

import (
	"fmt"
	"sync"
	"time"

	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

// SegName is the content name of segment seg of the object whose first
// segment is base. Objects must be spaced at least their segment count
// apart in the name space.
func SegName(base uint32, seg int) uint32 { return base + uint32(seg) }

// SegConfig tunes a SegFetcher. Zero values select the defaults noted.
type SegConfig struct {
	// CC configures the flow's congestion controller (see cc.Config; the
	// zero value is AIMD with an adaptive RTO).
	CC cc.Config
	// MaxRetx bounds retransmissions per segment before the whole object
	// is dead-lettered (default 4).
	MaxRetx int
	// Metrics, when set, receives EventRetransmit / EventDeadLetter /
	// EventCwndCut.
	Metrics *telemetry.Metrics
	// Observer, when set, receives every fetch lifecycle event with the
	// segment's content name (journey tracing). Called outside the lock;
	// must not block.
	Observer FetchObserver
}

func (c *SegConfig) fill() {
	if c.MaxRetx == 0 {
		c.MaxRetx = 4
	}
}

// SegStats snapshots a SegFetcher's counters.
type SegStats struct {
	// PendingObjects / PendingSegments count work not yet resolved
	// (in flight or queued behind the window).
	PendingObjects  int
	PendingSegments int
	// ObjectsCompleted / ObjectsFailed count finished objects.
	ObjectsCompleted int64
	ObjectsFailed    int64
	// SegmentsCompleted counts satisfied segments across all objects.
	SegmentsCompleted int64
	// Retransmits counts interest retransmissions.
	Retransmits int64
	// DeadLettered counts segments abandoned at the retransmission cap.
	DeadLettered int64
	// CwndCuts counts multiplicative decreases of the window.
	CwndCuts int64
	// GoodputBytes counts payload bytes of completed objects (goodput,
	// not throughput: retransmitted duplicates do not double-count).
	GoodputBytes int64
}

// FetchStats projects the segment counters onto the flat Fetcher counter
// shape shared by the /metrics exporter.
func (s SegStats) FetchStats() FetchStats {
	return FetchStats{
		Pending:      s.PendingSegments,
		Completed:    s.SegmentsCompleted,
		Retransmits:  s.Retransmits,
		DeadLettered: s.DeadLettered,
	}
}

type segObject struct {
	base      uint32
	total     int
	reasm     *Reassembly
	remaining int
	failed    bool
}

type segFlight struct {
	obj      *segObject
	seg      int
	gen      uint64
	attempts int
	sentAt   time.Duration
	// retransmitted poisons the RTT sample per Karn's rule: a satisfy for
	// a segment that was ever retransmitted is ambiguous.
	retransmitted bool
}

type segQueued struct {
	obj *segObject
	seg int
}

// SegFetcher fetches multi-segment objects with pipelined interests under
// a congestion window. Safe for concurrent use; with a single-goroutine
// netsim clock it is fully deterministic.
type SegFetcher struct {
	clock Clock
	send  func(pkt []byte)
	cfg   SegConfig

	// OnObject, when set, is called (outside the lock) with each object's
	// fully reassembled payload, segments concatenated in order.
	OnObject func(base uint32, data []byte)
	// OnObjectFail, when set, is called (outside the lock) for each
	// object abandoned because a segment hit the retransmission cap.
	OnObjectFail func(base uint32)

	mu       sync.Mutex
	flow     *cc.Flow
	gen      uint64
	objects  map[uint32]*segObject
	inflight map[uint32]*segFlight
	queue    []segQueued

	objectsCompleted  int64
	objectsFailed     int64
	segmentsCompleted int64
	retransmits       int64
	deadLettered      int64
	goodputBytes      int64
}

// NewSegFetcher builds a segmented fetcher that transmits packets through
// send and arms timeouts on clock.
func NewSegFetcher(clock Clock, send func(pkt []byte), cfg SegConfig) *SegFetcher {
	cfg.fill()
	return &SegFetcher{
		clock:    clock,
		send:     send,
		cfg:      cfg,
		flow:     cc.NewFlow(cfg.CC),
		objects:  map[uint32]*segObject{},
		inflight: map[uint32]*segFlight{},
	}
}

// FetchObject starts fetching the object whose segments are named
// base..base+segments-1. The first min(cwnd, segments) interests go out
// immediately; the rest are released as the window opens. An object
// already in progress is left alone.
func (f *SegFetcher) FetchObject(base uint32, segments int) error {
	if segments <= 0 {
		return fmt.Errorf("host: object %#x needs at least one segment", base)
	}
	f.mu.Lock()
	if _, exists := f.objects[base]; exists {
		f.mu.Unlock()
		return nil
	}
	obj := &segObject{base: base, total: segments, reasm: NewReassembly(segments), remaining: segments}
	f.objects[base] = obj
	for s := 0; s < segments; s++ {
		f.queue = append(f.queue, segQueued{obj: obj, seg: s})
	}
	sends := f.fillLocked()
	f.mu.Unlock()
	f.transmit(sends)
	return nil
}

// segSend is one deferred transmission decided under the lock and executed
// outside it.
type segSend struct {
	name    uint32
	pkt     []byte
	rto     time.Duration
	gen     uint64
	ev      FetchEvent
	metrics telemetry.Event
	hasMet  bool
}

// fillLocked releases queued segments into flight until the window is
// full, returning the transmissions to perform outside the lock.
func (f *SegFetcher) fillLocked() []segSend {
	var sends []segSend
	for len(f.inflight) < f.flow.Cwnd() && len(f.queue) > 0 {
		q := f.queue[0]
		f.queue = f.queue[1:]
		if q.obj.failed {
			continue
		}
		name := SegName(q.obj.base, q.seg)
		pkt, err := BuildPacket(profiles.NDNInterest(name), nil)
		if err != nil {
			// Unbuildable interest: treat as instantly dead. Cannot
			// happen for well-formed profiles; accounted for anyway.
			f.failObjectLocked(q.obj)
			continue
		}
		f.gen++
		fl := &segFlight{obj: q.obj, seg: q.seg, gen: f.gen, attempts: 1, sentAt: f.clock.Now()}
		f.inflight[name] = fl
		sends = append(sends, segSend{name: name, pkt: pkt, rto: f.flow.RTO(), gen: fl.gen, ev: FetchSend})
	}
	return sends
}

// transmit performs the sends decided under the lock: packet out, observer
// callbacks, timers armed.
func (f *SegFetcher) transmit(sends []segSend) {
	for _, s := range sends {
		if s.pkt != nil {
			f.send(s.pkt)
		}
		if s.hasMet && f.cfg.Metrics != nil {
			f.cfg.Metrics.RecordEvent(s.metrics)
		}
		if f.cfg.Observer != nil {
			f.cfg.Observer(s.ev, s.name, s.pkt)
		}
		if s.pkt != nil {
			name, gen := s.name, s.gen
			f.clock.Schedule(s.rto, func() { f.onTimeout(name, gen) })
		}
	}
}

// failObjectLocked marks obj failed and strips its in-flight segments so
// late timers and data become no-ops. Queued segments are skipped lazily.
func (f *SegFetcher) failObjectLocked(obj *segObject) {
	if obj.failed {
		return
	}
	obj.failed = true
	f.objectsFailed++
	delete(f.objects, obj.base)
	for name, fl := range f.inflight {
		if fl.obj == obj {
			delete(f.inflight, name)
		}
	}
}

func (f *SegFetcher) onTimeout(name uint32, gen uint64) {
	f.mu.Lock()
	fl, ok := f.inflight[name]
	if !ok || fl.gen != gen {
		f.mu.Unlock()
		return // satisfied, or its object failed, since the timer was armed
	}
	now := f.clock.Now()
	var sends []segSend

	// Congestion response first: back off the timer, and cut the window
	// at most once per congestion event. The cut is observable — it is
	// the mechanism the whole layer exists for.
	if f.flow.OnTimeout(now) {
		sends = append(sends, segSend{name: name, ev: FetchCwndCut,
			metrics: telemetry.EventCwndCut, hasMet: f.cfg.Metrics != nil})
	}

	if fl.attempts > f.cfg.MaxRetx {
		// Segment exhausted: the object dies with it.
		obj := fl.obj
		f.deadLettered++
		f.failObjectLocked(obj)
		cb := f.OnObjectFail
		sends = append(sends, segSend{name: name, ev: FetchDeadLetter,
			metrics: telemetry.EventDeadLetter, hasMet: f.cfg.Metrics != nil})
		// The window may have room now that the object's flights are gone.
		sends = append(sends, f.fillLocked()...)
		f.mu.Unlock()
		f.transmit(sends)
		if cb != nil {
			cb(obj.base)
		}
		return
	}

	// Retransmit under the backed-off RTO. The in-flight count does not
	// change (the retransmission replaces the lost interest), so no
	// window check applies; Karn poisons this segment's RTT sample.
	fl.attempts++
	fl.retransmitted = true
	fl.sentAt = now
	f.gen++
	fl.gen = f.gen
	f.retransmits++
	if pkt, err := BuildPacket(profiles.NDNInterest(name), nil); err == nil {
		sends = append(sends, segSend{name: name, pkt: pkt, rto: f.flow.RTO(), gen: fl.gen,
			ev: FetchRetx, metrics: telemetry.EventRetransmit, hasMet: f.cfg.Metrics != nil})
	}
	f.mu.Unlock()
	f.transmit(sends)
}

// HandleData inspects a received packet; if it is an NDN data packet for
// an in-flight segment the segment completes (feeding the congestion
// controller), and when it is the object's last missing segment the whole
// object completes. Duplicate or unknown data returns matched=false.
func (f *SegFetcher) HandleData(pkt []byte) (name uint32, matched bool) {
	v, err := core.ParseView(pkt)
	if err != nil {
		return 0, false
	}
	name, ok := DataName(v)
	if !ok {
		return 0, false
	}
	f.mu.Lock()
	fl, ok := f.inflight[name]
	if !ok {
		f.mu.Unlock()
		return name, false
	}
	delete(f.inflight, name)
	now := f.clock.Now()
	var rtt time.Duration
	if !fl.retransmitted {
		rtt = now - fl.sentAt
	}
	f.flow.OnSatisfy(now, rtt)
	f.segmentsCompleted++

	obj := fl.obj
	obj.reasm.Add(fl.seg, v.Payload())
	obj.remaining--
	var done bool
	var data []byte
	if obj.remaining == 0 {
		done = true
		data = obj.reasm.Bytes()
		f.goodputBytes += int64(len(data))
		f.objectsCompleted++
		delete(f.objects, obj.base)
	}
	cb := f.OnObject
	sends := f.fillLocked()
	f.mu.Unlock()

	if f.cfg.Observer != nil {
		f.cfg.Observer(FetchSatisfy, name, pkt)
	}
	f.transmit(sends)
	if done && cb != nil {
		cb(obj.base, data)
	}
	return name, true
}

// Stats snapshots the counters.
func (f *SegFetcher) Stats() SegStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	pendingSegs := len(f.inflight)
	for _, q := range f.queue {
		if !q.obj.failed {
			pendingSegs++
		}
	}
	return SegStats{
		PendingObjects:    len(f.objects),
		PendingSegments:   pendingSegs,
		ObjectsCompleted:  f.objectsCompleted,
		ObjectsFailed:     f.objectsFailed,
		SegmentsCompleted: f.segmentsCompleted,
		Retransmits:       f.retransmits,
		DeadLettered:      f.deadLettered,
		CwndCuts:          f.flow.Snapshot().Cuts,
		GoodputBytes:      f.goodputBytes,
	}
}

// CC snapshots the flow controller (cwnd, sRTT, RTO, cut count) for
// telemetry export.
func (f *SegFetcher) CC() cc.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flow.Snapshot()
}

// InFlight returns how many interests are currently outstanding.
func (f *SegFetcher) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.inflight)
}
