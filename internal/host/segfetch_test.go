package host

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/netsim"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

// segHarness wires a SegFetcher to a scripted producer over a netsim
// clock: every interest is answered after rtt unless its (name, attempt)
// pair is in drops.
type segHarness struct {
	sim     *netsim.Simulator
	f       *SegFetcher
	rtt     time.Duration
	drops   map[uint32]int // name → number of leading attempts to drop
	seen    map[uint32]int
	maxInFl int
	payload func(name uint32) []byte
}

func newSegHarness(t *testing.T, cfg SegConfig, rtt time.Duration) *segHarness {
	t.Helper()
	h := &segHarness{
		sim:   netsim.New(),
		rtt:   rtt,
		drops: map[uint32]int{},
		seen:  map[uint32]int{},
		payload: func(name uint32) []byte {
			return []byte(fmt.Sprintf("seg-%08x", name))
		},
	}
	h.f = NewSegFetcher(h.sim, func(pkt []byte) {
		v, err := core.ParseView(pkt)
		if err != nil {
			t.Fatalf("fetcher sent unparseable packet: %v", err)
		}
		name, ok := InterestName(v)
		if !ok {
			t.Fatal("fetcher sent a non-interest")
		}
		h.seen[name]++
		if fl := h.f.InFlight(); fl > h.maxInFl {
			h.maxInFl = fl
		}
		if h.drops[name] > 0 {
			h.drops[name]--
			return // dropped on the (virtual) wire
		}
		reply, err := BuildPacket(profiles.NDNData(name), h.payload(name))
		if err != nil {
			t.Fatal(err)
		}
		h.sim.Schedule(h.rtt, func() { h.f.HandleData(reply) })
	}, cfg)
	return h
}

func wantObject(h *segHarness, base uint32, segs int) []byte {
	var out []byte
	for s := 0; s < segs; s++ {
		out = append(out, h.payload(SegName(base, s))...)
	}
	return out
}

func TestSegFetchCompletesInOrder(t *testing.T) {
	h := newSegHarness(t, SegConfig{CC: cc.Config{InitCwnd: 2, MaxCwnd: 32}}, 5*time.Millisecond)
	var got []byte
	var gotBase uint32
	h.f.OnObject = func(base uint32, data []byte) { gotBase, got = base, data }

	const base, segs = 0xAA000100, 9
	if err := h.f.FetchObject(base, segs); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()

	if gotBase != base || !bytes.Equal(got, wantObject(h, base, segs)) {
		t.Fatalf("object %#x reassembled wrong: %q", gotBase, got)
	}
	st := h.f.Stats()
	if st.ObjectsCompleted != 1 || st.SegmentsCompleted != segs || st.Retransmits != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.GoodputBytes != int64(len(got)) {
		t.Fatalf("goodput %d bytes, want %d", st.GoodputBytes, len(got))
	}
	// The pipeline respected the window: the first transmissions go out
	// two at a time (InitCwnd=2), never all nine at once.
	if h.maxInFl > segs-1 {
		t.Fatalf("window never limited the pipeline: max in flight %d", h.maxInFl)
	}
}

func TestSegFetchPipelinesUnderWindow(t *testing.T) {
	h := newSegHarness(t, SegConfig{CC: cc.Config{Algo: cc.AlgoBlind, InitCwnd: 4, MaxCwnd: 4}},
		10*time.Millisecond)
	done := false
	h.f.OnObject = func(uint32, []byte) { done = true }
	if err := h.f.FetchObject(0xAA000200, 32); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()
	if !done {
		t.Fatal("object never completed")
	}
	if h.maxInFl != 4 {
		t.Fatalf("max in flight %d, want exactly the fixed window 4", h.maxInFl)
	}
}

func TestSegFetchWindowGrowsAcrossTransfer(t *testing.T) {
	h := newSegHarness(t, SegConfig{CC: cc.Config{InitCwnd: 2, MaxCwnd: 64}}, 5*time.Millisecond)
	if err := h.f.FetchObject(0xAA000300, 64); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()
	if h.maxInFl <= 2 {
		t.Fatalf("window never grew: max in flight %d", h.maxInFl)
	}
	if snap := h.f.CC(); snap.SRTT == 0 {
		t.Fatal("no RTT samples reached the estimator")
	}
}

func TestSegFetchRecoversFromLossWithKarnAndCut(t *testing.T) {
	met := &telemetry.Metrics{}
	var events []FetchEvent
	cfg := SegConfig{
		CC: cc.Config{InitCwnd: 4, MaxCwnd: 32,
			RTT: cc.RTTConfig{InitRTO: 50 * time.Millisecond, MinRTO: 20 * time.Millisecond}},
		MaxRetx:  4,
		Metrics:  met,
		Observer: func(ev FetchEvent, _ uint32, _ []byte) { events = append(events, ev) },
	}
	h := newSegHarness(t, cfg, 5*time.Millisecond)
	const base, segs = 0xAA000400, 16
	// Drop the first two transmissions of segment 3: it completes on its
	// third attempt, well under the cap.
	h.drops[SegName(base, 3)] = 2

	var got []byte
	h.f.OnObject = func(_ uint32, data []byte) { got = data }
	if err := h.f.FetchObject(base, segs); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()

	if !bytes.Equal(got, wantObject(h, base, segs)) {
		t.Fatalf("lossy transfer reassembled wrong bytes (%d bytes)", len(got))
	}
	st := h.f.Stats()
	if st.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2", st.Retransmits)
	}
	if st.CwndCuts == 0 {
		t.Fatal("timeouts never cut the window")
	}
	if st.DeadLettered != 0 || st.ObjectsFailed != 0 {
		t.Fatalf("spurious dead letters: %+v", st)
	}
	// Karn's rule: 15 segments completed cleanly, one via retransmission;
	// only the clean ones may feed the estimator.
	if snap := h.f.CC(); snap.Samples != segs-1 {
		t.Fatalf("RTT samples = %d, want %d (retransmitted segment sampled?)", snap.Samples, segs-1)
	}
	// Telemetry and observer both saw the machinery engage.
	if met.Event(telemetry.EventRetransmit) != 2 || met.Event(telemetry.EventCwndCut) == 0 {
		t.Fatalf("telemetry events: retx=%d cut=%d",
			met.Event(telemetry.EventRetransmit), met.Event(telemetry.EventCwndCut))
	}
	var retx, cuts int
	for _, ev := range events {
		switch ev {
		case FetchRetx:
			retx++
		case FetchCwndCut:
			cuts++
		}
	}
	if retx != 2 || cuts == 0 {
		t.Fatalf("observer events: retx=%d cuts=%d", retx, cuts)
	}
}

func TestSegFetchDeadLettersObjectAfterCap(t *testing.T) {
	met := &telemetry.Metrics{}
	h := newSegHarness(t, SegConfig{
		CC: cc.Config{InitCwnd: 4, MaxCwnd: 8,
			RTT: cc.RTTConfig{InitRTO: 30 * time.Millisecond, MinRTO: 10 * time.Millisecond,
				MaxRTO: 100 * time.Millisecond}},
		MaxRetx: 3,
		Metrics: met,
	}, 5*time.Millisecond)
	const base, segs = 0xAA000500, 8
	// Segment 5 is a black hole: every attempt dropped.
	h.drops[SegName(base, 5)] = 1 << 30

	var failed []uint32
	completed := false
	h.f.OnObjectFail = func(b uint32) { failed = append(failed, b) }
	h.f.OnObject = func(uint32, []byte) { completed = true }
	if err := h.f.FetchObject(base, segs); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()

	if completed {
		t.Fatal("object with a black-holed segment completed")
	}
	if len(failed) != 1 || failed[0] != base {
		t.Fatalf("OnObjectFail got %v, want [%#x]", failed, base)
	}
	st := h.f.Stats()
	if st.DeadLettered != 1 || st.ObjectsFailed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.PendingObjects != 0 || st.PendingSegments != 0 {
		t.Fatalf("failed object left pending state: %+v", st)
	}
	if met.Event(telemetry.EventDeadLetter) != 1 {
		t.Fatalf("telemetry dead letters = %d", met.Event(telemetry.EventDeadLetter))
	}
	// 1 + MaxRetx transmissions total for the black-holed segment.
	if n := h.seen[SegName(base, 5)]; n != 4 {
		t.Fatalf("black-holed segment transmitted %d times, want 4", n)
	}
}

func TestSegFetchConcurrentObjectsShareWindow(t *testing.T) {
	h := newSegHarness(t, SegConfig{CC: cc.Config{Algo: cc.AlgoBlind, InitCwnd: 3, MaxCwnd: 3}},
		5*time.Millisecond)
	done := map[uint32][]byte{}
	h.f.OnObject = func(base uint32, data []byte) { done[base] = data }
	if err := h.f.FetchObject(0xAA000600, 10); err != nil {
		t.Fatal(err)
	}
	if err := h.f.FetchObject(0xAA000700, 10); err != nil {
		t.Fatal(err)
	}
	h.sim.Run()
	for _, base := range []uint32{0xAA000600, 0xAA000700} {
		if !bytes.Equal(done[base], wantObject(h, base, 10)) {
			t.Fatalf("object %#x wrong or missing", base)
		}
	}
	if h.maxInFl != 3 {
		t.Fatalf("two objects drove %d in flight, want the shared window 3", h.maxInFl)
	}
}

func TestSegFetchDuplicateDataDoesNotDoubleCount(t *testing.T) {
	sim := netsim.New()
	var f *SegFetcher
	f = NewSegFetcher(sim, func(pkt []byte) {
		v, _ := core.ParseView(pkt)
		name, _ := InterestName(v)
		reply, err := BuildPacket(profiles.NDNData(name), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		// Deliver twice: the duplicate must be ignored.
		sim.Schedule(time.Millisecond, func() { f.HandleData(reply) })
		sim.Schedule(2*time.Millisecond, func() { f.HandleData(reply) })
	}, SegConfig{})
	objects := 0
	f.OnObject = func(uint32, []byte) { objects++ }
	if err := f.FetchObject(0xAA000800, 4); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	st := f.Stats()
	if objects != 1 || st.SegmentsCompleted != 4 {
		t.Fatalf("objects=%d segments=%d after duplicate data", objects, st.SegmentsCompleted)
	}
}
