package host

import (
	"bytes"
	"testing"
)

// FuzzSegmentReassembly drives the segment buffer with an adversarial
// arrival script — out-of-order, duplicate, conflicting ("overlapping"),
// truncated, and out-of-range segments — decoded from the fuzzer's bytes.
// The buffer must never panic, and once complete it must emit exactly the
// first-accepted payload of every segment, concatenated in segment order
// (never a later conflicting copy, never reordered bytes).
func FuzzSegmentReassembly(f *testing.F) {
	// Seed corpus: in-order, reversed, duplicates with conflicting bytes,
	// out-of-range indices, empty and oversized payloads.
	f.Add(uint8(4), []byte{0, 2, 1, 1, 2, 3, 0xAA, 3, 0})
	f.Add(uint8(1), []byte{0, 0, 0})
	f.Add(uint8(8), []byte{7, 6, 5, 4, 3, 2, 1, 0, 9, 200, 7})
	f.Add(uint8(0), []byte{1, 2, 3})
	f.Add(uint8(16), bytes.Repeat([]byte{5, 1}, 40))

	f.Fuzz(func(t *testing.T, totalByte uint8, script []byte) {
		total := int(totalByte % 32)
		r := NewReassembly(total)
		if total <= 0 {
			total = 1 // NewReassembly's documented floor
		}
		if r.Total() != total {
			t.Fatalf("Total() = %d, want %d", r.Total(), total)
		}

		// Model: first accepted payload per in-range segment.
		model := make([][]byte, total)
		accepted := make([]bool, total)

		for i := 0; i < len(script); {
			// One script step: a segment index byte, a length byte, then
			// that many payload bytes (truncated scripts yield truncated
			// payloads — that is the point).
			seg := int(int8(script[i])) // negative indices too
			i++
			var payload []byte
			if i < len(script) {
				n := int(script[i] % 64)
				i++
				end := i + n
				if end > len(script) {
					end = len(script)
				}
				payload = script[i:end]
				i = end
			}
			added := r.Add(seg, payload)
			inRange := seg >= 0 && seg < total
			if added != (inRange && !accepted[seg]) {
				t.Fatalf("Add(%d, %d bytes) = %v with inRange=%v accepted=%v",
					seg, len(payload), added, inRange, inRange && accepted[seg])
			}
			if added {
				model[seg] = append([]byte(nil), payload...)
				accepted[seg] = true
			}
			// Mutating the caller's buffer after Add must not leak into
			// the stored copy.
			for j := range payload {
				payload[j] ^= 0xFF
			}
			for j := range payload {
				payload[j] ^= 0xFF
			}
		}

		got := 0
		for seg := 0; seg < total; seg++ {
			if accepted[seg] {
				got++
			}
			if r.Have(seg) != accepted[seg] {
				t.Fatalf("Have(%d) = %v, want %v", seg, r.Have(seg), accepted[seg])
			}
		}
		if r.Got() != got {
			t.Fatalf("Got() = %d, want %d", r.Got(), got)
		}
		if r.Complete() != (got == total) {
			t.Fatalf("Complete() = %v with %d/%d", r.Complete(), got, total)
		}
		if r.Complete() {
			want := []byte{}
			for _, p := range model {
				want = append(want, p...)
			}
			if !bytes.Equal(r.Bytes(), want) {
				t.Fatalf("Bytes() = %q, want %q", r.Bytes(), want)
			}
		} else if r.Bytes() != nil {
			t.Fatal("Bytes() non-nil while incomplete")
		}
	})
}
