package host

import "time"

// wallClock adapts real time onto the Clock interface fetchers arm their
// timers on: Now is time since construction (a monotonic duration, the
// same shape netsim's virtual clock produces), Schedule is time.AfterFunc.
// Fetcher and SegFetcher lock internally, so timer goroutines firing
// concurrently with socket reads are safe.
type wallClock struct{ base time.Time }

// NewWallClock returns a real-time Clock for running fetchers against
// live sockets (diphost) rather than a simulator.
func NewWallClock() Clock { return &wallClock{base: time.Now()} }

func (w *wallClock) Now() time.Duration { return time.Since(w.base) }

func (w *wallClock) Schedule(delay time.Duration, fn func()) { time.AfterFunc(delay, fn) }
