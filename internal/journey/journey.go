// Package journey implements end-to-end distributed tracing for DIP: one
// span per element a packet traverses (router, link, tunnel endpoint, host
// fetcher), stitched into per-packet journeys by a Collector, decomposed
// into time-in-FN vs time-in-queue vs time-on-wire vs PIT-wait, and frozen
// into an anomaly flight recorder when something goes wrong.
//
// The hard problem is correlation: which spans belong to one packet? Two
// mechanisms coexist, mirroring the paper's own extensibility story (§2.4):
//
//   - TraceCtx FN. A host may reserve 64 bits of the FN-locations region and
//     tag them with the F_trace extension key (core.KeyTraceCtx). The
//     operand is an explicit trace ID every element reads back out. The FN
//     is host-tagged and passive, so routers skip it per Algorithm 1 and
//     hosts without a module ignore it — carrying it never breaks anything.
//   - Packet fingerprint. For unmodified wire formats the trace ID is a
//     stable hash of the packet's first CaptureBytes with the mutable
//     hop-limit byte masked out. Identical retransmissions and fault-
//     injected duplicates share a fingerprint by construction (the Collector
//     splits them into journey instances); protocols that mutate operands
//     hop by hop (OPT's PVF) defeat fingerprinting and need the TraceCtx FN.
//
// Span timestamps come from one injected clock (the netsim virtual clock in
// simulations, wall time in live processes) so a journey never mixes time
// bases; router CPU time is metered separately on the wall clock.
package journey

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dip/internal/core"
	"dip/internal/tunnel"
)

// TraceID identifies all spans of one packet's life. Zero is reserved for
// "unknown" (spans carrying it attach by content name or are discarded).
type TraceID uint64

// CaptureBytes is the packet prefix a fingerprint covers — the same prefix
// internal/trace captures, so a fingerprint is reproducible offline from a
// trace record's captured bytes.
const CaptureBytes = 96

// hopLimitByte is the offset of the mutable hop-limit field in the basic
// header (masked out of fingerprints: every hop decrements it).
const hopLimitByte = 3

// Fingerprint hashes the packet's first CaptureBytes (FNV-1a 64) with the
// hop-limit byte zeroed, yielding a trace ID that is stable across hops for
// any packet whose FN operands are not rewritten in flight. Never zero.
func Fingerprint(pkt []byte) TraceID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := len(pkt)
	if n > CaptureBytes {
		n = CaptureBytes
	}
	for i := 0; i < n; i++ {
		b := pkt[i]
		if i == hopLimitByte {
			b = 0
		}
		h ^= uint64(b)
		h *= prime64
	}
	if h == 0 {
		h = 1
	}
	return TraceID(h)
}

// TraceOfView extracts the packet's trace ID from an already-parsed view:
// an explicit TraceCtx FN operand when the packet carries one, else the
// fingerprint of the underlying bytes.
func TraceOfView(v core.View) TraceID {
	if id, ok := traceCtx(v); ok {
		return id
	}
	return Fingerprint(v.Packet())
}

// TraceOf extracts the trace ID from raw bytes: a DIP packet directly, a
// DIP-in-IPv4 tunnel packet by its inner payload (so carrier-link spans
// join the inner packet's journey), and 0 for anything else (probe control
// traffic, foreign packets) — callers skip zero-trace spans.
func TraceOf(pkt []byte) TraceID {
	if v, err := core.ParseView(pkt); err == nil {
		return TraceOfView(v)
	}
	if inner, err := tunnel.Decap(pkt); err == nil {
		if v, err := core.ParseView(inner); err == nil {
			return TraceOfView(v)
		}
	}
	return 0
}

// traceCtx scans the FN list for a host-tagged F_trace FN with a 64-bit
// byte-aligned operand and reads the explicit trace ID out of it.
func traceCtx(v core.View) (TraceID, bool) {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Key == core.KeyTraceCtx && fn.Host && fn.Len == 64 && fn.Loc%8 == 0 {
			locs := v.Locations()
			off := int(fn.Loc) / 8
			if off+8 <= len(locs) {
				id := TraceID(binary.BigEndian.Uint64(locs[off:]))
				if id != 0 {
					return id, true
				}
			}
		}
	}
	return 0, false
}

// WithTraceCtx appends a TraceCtx FN carrying id to a header under
// construction, reserving eight fresh bytes at the end of the FN-locations
// region. The header must not have been serialized yet. Returns h.
func WithTraceCtx(h *core.Header, id TraceID) *core.Header {
	loc := uint16(len(h.Locations) * 8)
	h.FNs = append(h.FNs, core.HostFN(loc, 64, core.KeyTraceCtx))
	var operand [8]byte
	binary.BigEndian.PutUint64(operand[:], uint64(id))
	h.Locations = append(h.Locations, operand[:]...)
	return h
}

// ProtoOf classifies a packet's protocol family by its leading FN — the
// per-protocol axis of the latency decomposition histograms.
func ProtoOf(v core.View) string {
	if v.FNNum() == 0 {
		return "empty"
	}
	switch v.FN(0).Key {
	case core.KeyMatch32:
		return "ip32"
	case core.KeyMatch128:
		return "ip128"
	case core.KeyFIB:
		return "ndn-interest"
	case core.KeyPIT:
		return "ndn-data"
	case core.KeyParm, core.KeyMAC, core.KeyMark, core.KeyVer:
		return "opt"
	case core.KeyDAG:
		return "xia"
	}
	return "other"
}

// nameOfView extracts the 32-bit content name of an NDN-style packet (the
// operand of its F_FIB or F_PIT FN), for linking interest and data journeys
// of one fetch. ok=false for non-NDN packets.
func nameOfView(v core.View) (uint32, bool) {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if (fn.Key == core.KeyFIB || fn.Key == core.KeyPIT) && fn.Len == 32 && fn.Loc%8 == 0 {
			locs := v.Locations()
			off := int(fn.Loc) / 8
			if off+4 <= len(locs) {
				return binary.BigEndian.Uint32(locs[off:]), true
			}
		}
	}
	return 0, false
}

// MaxSteps bounds the per-FN step detail retained in a router span
// (matching internal/trace's bound, so a frozen journey carries the same
// detail a trace record would).
const MaxSteps = 32

// Step is one executed FN inside a router span.
type Step struct {
	Key core.Key
	Ns  int64
}

// SpanKind says which element type emitted a span.
type SpanKind uint8

// Span kinds, one per traversed element type.
const (
	// SpanRouter brackets one router's ingress→verdict (Algorithm 1).
	SpanRouter SpanKind = iota
	// SpanLink is one link transit: queueing + serialization + propagation.
	SpanLink
	// SpanTunnelEncap marks a packet entering the UDP/legacy overlay.
	SpanTunnelEncap
	// SpanTunnelDecap marks a packet leaving the overlay into a router.
	SpanTunnelDecap
	// SpanTunnelProbeMiss records a tunnel liveness probe going unanswered.
	SpanTunnelProbeMiss
	// SpanTunnelFailover records a tunnel switching to its backup remote.
	SpanTunnelFailover
	// SpanHostSend is a host's first transmission of a packet.
	SpanHostSend
	// SpanHostRetx is a fetcher retransmission (opens a new journey instance).
	SpanHostRetx
	// SpanHostRecv is a packet arriving at a host (terminal).
	SpanHostRecv
	// SpanHostSatisfy is a fetcher completing a name with data (terminal).
	SpanHostSatisfy
	// SpanHostDeadLetter is a fetcher abandoning a name (terminal, by name).
	SpanHostDeadLetter
	// SpanHostCwndCut is a fetcher's congestion controller cutting its
	// window after a timeout (a congestion event, filed by name).
	SpanHostCwndCut
	// SpanCSCold is a content-store cold-tier read: the time an interest
	// spent parked while the arena slot was fetched and re-injected.
	SpanCSCold
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"router", "link", "encap", "decap", "probe-miss", "failover",
	"send", "retx", "recv", "satisfy", "dead-letter", "cwnd-cut",
	"cs-cold",
}

// String names the span kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span(?)"
}

func spanKindOf(s string) (SpanKind, bool) {
	for i, n := range spanKindNames {
		if n == s {
			return SpanKind(i), true
		}
	}
	return 0, false
}

// Span is one element's observation of one packet. Start and End are
// nanoseconds on the journey clock (virtual time in simulations); CPUNs is
// wall-clock engine time, metered separately so virtual-time spans still
// expose real compute cost.
type Span struct {
	Trace TraceID
	Kind  SpanKind
	// Node labels the emitting element ("R1", "C->R1", "R2~tun").
	Node       string
	Start, End int64
	// QueueNs and WireNs decompose a link span's duration (End-Start =
	// QueueNs + WireNs): time waiting behind earlier packets vs
	// serialization + propagation (+ impairment-injected delay).
	QueueNs, WireNs int64
	// CPUNs is a router span's wall-clock Algorithm 1 bracket.
	CPUNs int64
	// Verdict and Reason are a router span's outcome.
	Verdict core.Verdict
	Reason  core.DropReason
	// Dropped marks the span where the packet died; Cause names the fault
	// for non-router drops ("loss", "down", "tail-drop", "link-down").
	Dropped bool
	Cause   string
	// Name is the 32-bit NDN content name when the packet carries one.
	Name uint32
	// HasName distinguishes name 0 from "no name".
	HasName bool
	// Proto is the packet's protocol family (ProtoOf).
	Proto string
	// Steps[:NSteps] is a router span's per-FN detail.
	Steps  [MaxSteps]Step
	NSteps uint8
	// Seq is the collector's arrival sequence, assigned by Add — the
	// tie-breaker that keeps same-timestamp spans in arrival order.
	Seq uint64
}

// Duration is the span's extent on the journey clock.
func (s *Span) Duration() int64 { return s.End - s.Start }

// Terminal reports whether this span ends a journey: the packet died here,
// was consumed by the element (deliver/absorb), or reached a host.
func (s *Span) Terminal() bool {
	if s.Dropped {
		return true
	}
	switch s.Kind {
	case SpanRouter:
		return s.Verdict == core.VerdictDeliver || s.Verdict == core.VerdictAbsorb
	case SpanHostRecv, SpanHostSatisfy, SpanHostDeadLetter:
		return true
	}
	return false
}

// String renders the span as one '#'-prefixed metadata line, the exchange
// format between a live process's /journeys endpoint and a remote
// Collector (ParseSpan inverts it) — the same pattern /trace uses.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# span trace=%016x kind=%s node=%s start=%d end=%d",
		uint64(s.Trace), s.Kind, s.Node, s.Start, s.End)
	if s.QueueNs != 0 || s.WireNs != 0 {
		fmt.Fprintf(&b, " queue=%d wire=%d", s.QueueNs, s.WireNs)
	}
	if s.CPUNs != 0 {
		fmt.Fprintf(&b, " cpu=%d", s.CPUNs)
	}
	if s.Kind == SpanRouter {
		fmt.Fprintf(&b, " verdict=%s reason=%s", s.Verdict, s.Reason)
	}
	if s.Dropped {
		b.WriteString(" dropped=1")
	}
	if s.Cause != "" {
		fmt.Fprintf(&b, " cause=%s", s.Cause)
	}
	if s.HasName {
		fmt.Fprintf(&b, " name=%08x", s.Name)
	}
	if s.Proto != "" {
		fmt.Fprintf(&b, " proto=%s", s.Proto)
	}
	if s.NSteps > 0 {
		b.WriteString(" steps=")
		for i := uint8(0); i < s.NSteps; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%s", s.Steps[i].Key, time.Duration(s.Steps[i].Ns))
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// ParseSpan inverts Span.String. Unknown fields are ignored so the format
// can grow; per-FN steps are not round-tripped (keys are rendered by name).
func ParseSpan(line string) (Span, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), "# span ")
	if !ok {
		return Span{}, fmt.Errorf("journey: not a span line")
	}
	var s Span
	for _, tok := range strings.Fields(rest) {
		k, v, found := strings.Cut(tok, "=")
		if !found {
			continue
		}
		switch k {
		case "trace":
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil {
				return Span{}, fmt.Errorf("journey: trace: %v", err)
			}
			s.Trace = TraceID(id)
		case "kind":
			kind, ok := spanKindOf(v)
			if !ok {
				return Span{}, fmt.Errorf("journey: unknown span kind %q", v)
			}
			s.Kind = kind
		case "node":
			s.Node = v
		case "start":
			s.Start, _ = strconv.ParseInt(v, 10, 64)
		case "end":
			s.End, _ = strconv.ParseInt(v, 10, 64)
		case "queue":
			s.QueueNs, _ = strconv.ParseInt(v, 10, 64)
		case "wire":
			s.WireNs, _ = strconv.ParseInt(v, 10, 64)
		case "cpu":
			s.CPUNs, _ = strconv.ParseInt(v, 10, 64)
		case "verdict":
			for vd := core.VerdictContinue; vd <= core.VerdictDrop; vd++ {
				if vd.String() == v {
					s.Verdict = vd
				}
			}
		case "reason":
			for r := 0; r < core.NumDropReasons; r++ {
				if core.DropReason(r).String() == v {
					s.Reason = core.DropReason(r)
				}
			}
		case "dropped":
			s.Dropped = v == "1"
		case "cause":
			s.Cause = v
		case "name":
			n, err := strconv.ParseUint(v, 16, 32)
			if err == nil {
				s.Name, s.HasName = uint32(n), true
			}
		case "proto":
			s.Proto = v
		}
	}
	return s, nil
}

// SpanSink receives spans as elements emit them. Collector (in-process
// stitching) and Emitter (ring for /journeys export) both implement it.
type SpanSink interface {
	AddSpan(Span)
}
