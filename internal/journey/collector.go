package journey

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dip/internal/telemetry"
)

// Config tunes a Collector. Zero values select the defaults noted on each
// field, so Collector{} semantics come from NewCollector(Config{}).
type Config struct {
	// MaxJourneys bounds live journey state (default 4096). When exceeded,
	// the oldest journey is finalized (flagged incomplete if it has no
	// terminal span) and evicted — the collector's memory is O(MaxJourneys
	// × spans-per-journey), never O(traffic).
	MaxJourneys int
	// FlightSize is the anomaly flight recorder's ring capacity (default 64).
	FlightSize int
	// LatencyMinSamples is how many complete journeys must be observed
	// before p99.9 excursion freezing arms (default 100): freezing on the
	// first journeys seen would capture noise, not anomalies.
	LatencyMinSamples int64
}

func (c *Config) fill() {
	if c.MaxJourneys <= 0 {
		c.MaxJourneys = 4096
	}
	if c.FlightSize <= 0 {
		c.FlightSize = 64
	}
	if c.LatencyMinSamples <= 0 {
		c.LatencyMinSamples = 100
	}
}

// Journey is one packet instance's stitched span sequence. A trace ID maps
// to one journey normally; fetch retransmissions and fault-injected
// duplicates open further instances (same Trace, Instance 1, 2, …) so each
// copy's path is told separately.
type Journey struct {
	Trace    TraceID
	Instance int
	// Spans are in stitched order: sorted by (Start, arrival Seq), so
	// reordered collector arrival does not scramble the timeline.
	Spans []Span
	// Incomplete marks a journey evicted (ring wraparound, collector
	// memory bound) before any terminal span arrived — it must never be
	// read as a finished timeline.
	Incomplete bool
	done       bool
}

// Complete reports whether the journey reached a terminal span (delivered,
// satisfied, absorbed, or dropped somewhere attributable).
func (j *Journey) Complete() bool { return j.done }

// Hops counts the router spans — the journey's hop count.
func (j *Journey) Hops() int {
	n := 0
	for i := range j.Spans {
		if j.Spans[i].Kind == SpanRouter {
			n++
		}
	}
	return n
}

// DroppedAt returns the span where the packet died, or nil.
func (j *Journey) DroppedAt() *Span {
	for i := range j.Spans {
		if j.Spans[i].Dropped {
			return &j.Spans[i]
		}
	}
	return nil
}

// Proto returns the journey's protocol family (from its first span that
// knows one).
func (j *Journey) Proto() string {
	for i := range j.Spans {
		if p := j.Spans[i].Proto; p != "" {
			return p
		}
	}
	return "other"
}

// Path is the journey's node chain with link spans elided and consecutive
// repeats collapsed: "C>R1>R2>R3>P". It is the aggregation key for the
// per-path latency histograms.
func (j *Journey) Path() string {
	var b strings.Builder
	last := ""
	for i := range j.Spans {
		sp := &j.Spans[i]
		if sp.Kind == SpanLink {
			continue
		}
		if sp.Node == last {
			continue
		}
		if last != "" {
			b.WriteByte('>')
		}
		b.WriteString(sp.Node)
		last = sp.Node
	}
	return b.String()
}

// Decomposition splits a journey's end-to-end latency into where the time
// went. The components are measured on the one shared journey clock and
// satisfy FN + Queue + Wire + PITWait == Total exactly for complete
// journeys: PITWait is the residual — time the packet (or its data reply)
// sat in network state between spans, which for NDN fetches is dominated
// by PIT wait and for others is scheduling gaps.
type Decomposition struct {
	TotalNs int64
	// FNNs is time inside elements (router Algorithm 1 brackets, tunnel
	// encap/decap, host processing) on the journey clock. In virtual-time
	// simulations element processing is instantaneous, so this is 0 and
	// CPUNs carries the real compute cost.
	FNNs int64
	// QueueNs is time waiting behind other packets at link serializers.
	QueueNs int64
	// WireNs is serialization + propagation (+ injected impairment delay).
	WireNs int64
	// PITWaitNs is the residual: gaps between spans not attributed above.
	PITWaitNs int64
	// CPUNs is total wall-clock engine time across router spans — reported
	// beside the decomposition, not inside it (different clock).
	CPUNs int64
}

// Decompose computes the journey's latency decomposition.
func (j *Journey) Decompose() Decomposition {
	var d Decomposition
	if len(j.Spans) == 0 {
		return d
	}
	first, last := j.Spans[0].Start, j.Spans[0].End
	for i := range j.Spans {
		sp := &j.Spans[i]
		if sp.Start < first {
			first = sp.Start
		}
		if sp.End > last {
			last = sp.End
		}
		switch sp.Kind {
		case SpanLink:
			d.QueueNs += sp.QueueNs
			d.WireNs += sp.WireNs
		default:
			d.FNNs += sp.Duration()
		}
		d.CPUNs += sp.CPUNs
	}
	d.TotalNs = last - first
	d.PITWaitNs = d.TotalNs - d.FNNs - d.QueueNs - d.WireNs
	if d.PITWaitNs < 0 {
		// Overlapping spans (parallel replication) can over-attribute;
		// clamp so the residual never goes negative.
		d.PITWaitNs = 0
	}
	return d
}

// String renders the journey as a '#'-prefixed summary line followed by a
// waterfall: one line per span, indented to its start offset.
func (j *Journey) String() string {
	var b strings.Builder
	d := j.Decompose()
	fmt.Fprintf(&b, "# journey trace=%016x instance=%d spans=%d routers=%d complete=%t",
		uint64(j.Trace), j.Instance, len(j.Spans), j.Hops(), j.Complete())
	if j.Incomplete {
		b.WriteString(" incomplete=1")
	}
	if sp := j.DroppedAt(); sp != nil {
		fmt.Fprintf(&b, " dropped-at=%s", sp.Node)
		if sp.Cause != "" {
			fmt.Fprintf(&b, " cause=%s", sp.Cause)
		}
	}
	fmt.Fprintf(&b, " total=%dns fn=%dns queue=%dns wire=%dns pitwait=%dns cpu=%dns path=%s\n",
		d.TotalNs, d.FNNs, d.QueueNs, d.WireNs, d.PITWaitNs, d.CPUNs, j.Path())
	if len(j.Spans) == 0 {
		return b.String()
	}
	first := j.Spans[0].Start
	for i := range j.Spans {
		if j.Spans[i].Start < first {
			first = j.Spans[i].Start
		}
	}
	for i := range j.Spans {
		sp := &j.Spans[i]
		fmt.Fprintf(&b, "  +%-10d %-10s %-14s", sp.Start-first, sp.Kind, sp.Node)
		switch {
		case sp.Kind == SpanLink:
			fmt.Fprintf(&b, " queue=%dns wire=%dns", sp.QueueNs, sp.WireNs)
		case sp.Kind == SpanRouter:
			fmt.Fprintf(&b, " verdict=%s cpu=%dns", sp.Verdict, sp.CPUNs)
		}
		if sp.Dropped {
			fmt.Fprintf(&b, " DROPPED")
			if sp.Cause != "" {
				fmt.Fprintf(&b, " (%s)", sp.Cause)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PathStat aggregates complete journeys over one (path, proto) pair.
type PathStat struct {
	Path  string
	Proto string
	Count int64
	// TotalHist is the log2 end-to-end latency histogram (telemetry bucket
	// edges: BucketUpper).
	TotalHist [telemetry.HistBuckets]int64
	// Component sums, for the time-decomposition series.
	FNNs, QueueNs, WireNs, PITWaitNs, CPUNs int64
}

// Stats is a Collector snapshot.
type Stats struct {
	Spans      uint64
	Journeys   int
	Complete   int64
	Incomplete int64
	Frozen     int64
	Duplicates int64
	// TunnelEvents counts zero-trace tunnel health spans (probe misses,
	// failovers) filed outside any journey.
	TunnelEvents int64
	Paths        []PathStat
}

// Collector stitches spans into journeys. Safe for concurrent use; in topo
// simulations all spans arrive on the simulator goroutine, in live
// deployments each process's Emitter feeds it over /journeys export.
type Collector struct {
	cfg Config

	mu      sync.Mutex
	seq     uint64
	byTrace map[TraceID][]*Journey
	order   []*Journey // insertion order, for the memory bound
	paths   map[string]*PathStat

	complete     int64
	incomplete   int64
	duplicates   int64
	tunnelEvents int64

	// latency excursion tracking over complete journeys
	latHist  [telemetry.HistBuckets]int64
	latCount int64

	flight *FlightRecorder
}

// NewCollector builds a Collector with its anomaly flight recorder.
func NewCollector(cfg Config) *Collector {
	cfg.fill()
	return &Collector{
		cfg:     cfg,
		byTrace: map[TraceID][]*Journey{},
		paths:   map[string]*PathStat{},
		flight:  newFlightRecorder(cfg.FlightSize),
	}
}

// Flight returns the collector's anomaly flight recorder.
func (c *Collector) Flight() *FlightRecorder { return c.flight }

// AddSpan implements SpanSink: file the span into the right journey
// instance and react to what it says (terminal → finalize; anomalous →
// freeze).
func (c *Collector) AddSpan(sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	sp.Seq = c.seq

	if sp.Trace == 0 {
		if sp.Kind == SpanTunnelProbeMiss || sp.Kind == SpanTunnelFailover {
			c.tunnelEvents++
		}
		// Untraceable (dead letters and cwnd cuts carry only a name);
		// nothing to stitch, but the anomaly is findable by name.
		if sp.Kind == SpanHostDeadLetter {
			c.freezeByNameLocked(sp.Name, FreezeRetx, sp.Start)
		}
		if sp.Kind == SpanHostCwndCut {
			c.freezeByNameLocked(sp.Name, FreezeCwndCut, sp.Start)
		}
		return
	}

	j := c.routeLocked(&sp)
	j.Spans = append(j.Spans, sp)

	if sp.Kind == SpanHostRetx {
		// The retransmission starts a new packet instance; freeze the
		// stalled predecessor so the anomaly that caused the retx survives.
		if insts := c.byTrace[sp.Trace]; len(insts) > 1 {
			c.freezeLocked(insts[len(insts)-2], FreezeRetx, sp.Start)
		}
	}
	if sp.Terminal() && !j.done {
		j.done = true
		c.finalizeLocked(j, sp.Start)
	}
	if sp.Dropped {
		c.freezeLocked(j, FreezeDrop, sp.Start)
	}
}

// routeLocked picks (or opens) the journey instance a span belongs to.
// Fault-injected duplicates surface as a second span with an (element,
// kind) the existing instance already has — each copy gets its own
// instance so both timelines stay coherent.
func (c *Collector) routeLocked(sp *Span) *Journey {
	insts := c.byTrace[sp.Trace]
	if sp.Kind == SpanHostRetx {
		// A retx is by definition a new transmission: open instance N+1.
		return c.openLocked(sp.Trace, insts)
	}
	for _, j := range insts {
		if j.done {
			continue
		}
		if j.has(sp.Kind, sp.Node) {
			continue
		}
		return j
	}
	if len(insts) > 0 {
		c.duplicates++
	}
	return c.openLocked(sp.Trace, insts)
}

func (j *Journey) has(k SpanKind, node string) bool {
	for i := range j.Spans {
		if j.Spans[i].Kind == k && j.Spans[i].Node == node {
			return true
		}
	}
	return false
}

func (c *Collector) openLocked(id TraceID, insts []*Journey) *Journey {
	j := &Journey{Trace: id, Instance: len(insts)}
	c.byTrace[id] = append(insts, j)
	c.order = append(c.order, j)
	c.evictLocked()
	return j
}

// evictLocked enforces the memory bound: the oldest journey is finalized
// as-is. An unfinished evictee is flagged Incomplete — a ring-wraparound
// partial must never masquerade as a finished timeline.
func (c *Collector) evictLocked() {
	for len(c.order) > c.cfg.MaxJourneys {
		j := c.order[0]
		c.order = c.order[1:]
		if !j.done {
			j.Incomplete = true
			c.incomplete++
		}
		insts := c.byTrace[j.Trace]
		for i, cand := range insts {
			if cand == j {
				insts = append(insts[:i], insts[i+1:]...)
				break
			}
		}
		if len(insts) == 0 {
			delete(c.byTrace, j.Trace)
		} else {
			c.byTrace[j.Trace] = insts
		}
	}
}

// finalizeLocked folds a completed journey into the per-path aggregates
// and checks for a tail-latency excursion.
func (c *Collector) finalizeLocked(j *Journey, at int64) {
	c.complete++
	j.sortSpans()
	d := j.Decompose()
	key := j.Path() + "|" + j.Proto()
	ps := c.paths[key]
	if ps == nil {
		ps = &PathStat{Path: j.Path(), Proto: j.Proto()}
		c.paths[key] = ps
	}
	ps.Count++
	ps.TotalHist[bucketOf(d.TotalNs)]++
	ps.FNNs += d.FNNs
	ps.QueueNs += d.QueueNs
	ps.WireNs += d.WireNs
	ps.PITWaitNs += d.PITWaitNs
	ps.CPUNs += d.CPUNs

	// p99.9 excursion: once enough journeys are in, freeze any journey
	// whose total lands above the current p99.9 bucket.
	if c.latCount >= c.cfg.LatencyMinSamples {
		if d.TotalNs > c.p999UpperLocked() {
			c.freezeLocked(j, FreezeLatency, at)
		}
	}
	c.latHist[bucketOf(d.TotalNs)]++
	c.latCount++
}

func bucketOf(ns int64) int {
	b := 0
	for ns > 1 && b < telemetry.HistBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// p999UpperLocked returns the upper bound of the bucket holding the 99.9th
// percentile of complete-journey totals so far.
func (c *Collector) p999UpperLocked() int64 {
	target := c.latCount - c.latCount/1000
	var seen int64
	for b := 0; b < telemetry.HistBuckets; b++ {
		seen += c.latHist[b]
		if seen >= target {
			return int64(telemetry.BucketUpper(b))
		}
	}
	return 1<<63 - 1
}

// freezeLocked snapshots the journey into the flight recorder.
func (c *Collector) freezeLocked(j *Journey, reason FreezeReason, at int64) {
	j.sortSpans()
	c.flight.freeze(j, reason, at)
}

// freezeByNameLocked freezes every live journey carrying the given content
// name — the dead-letter path, where the abandoned interest's packets are
// only findable by name.
func (c *Collector) freezeByNameLocked(name uint32, reason FreezeReason, at int64) {
	for _, j := range c.order {
		for i := range j.Spans {
			if j.Spans[i].HasName && j.Spans[i].Name == name {
				c.freezeLocked(j, reason, at)
				break
			}
		}
	}
}

// FreezeTrace freezes all instances of a trace into the flight recorder —
// the hook router guard quarantine uses when a packet's processing
// panicked (FreezeQuarantine).
func (c *Collector) FreezeTrace(id TraceID, reason FreezeReason, at int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.byTrace[id] {
		c.freezeLocked(j, reason, at)
	}
}

func (j *Journey) sortSpans() {
	sort.SliceStable(j.Spans, func(a, b int) bool {
		if j.Spans[a].Start != j.Spans[b].Start {
			return j.Spans[a].Start < j.Spans[b].Start
		}
		return j.Spans[a].Seq < j.Spans[b].Seq
	})
}

// Journeys snapshots all live journeys, spans stitched (sorted), oldest
// first. The returned journeys are deep copies safe to hold.
func (c *Collector) Journeys() []*Journey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Journey, 0, len(c.order))
	for _, j := range c.order {
		j.sortSpans()
		cp := *j
		cp.Spans = append([]Span(nil), j.Spans...)
		out = append(out, &cp)
	}
	return out
}

// JourneysOf returns the instances of one trace, stitched, as deep copies.
func (c *Collector) JourneysOf(id TraceID) []*Journey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Journey, 0, len(c.byTrace[id]))
	for _, j := range c.byTrace[id] {
		j.sortSpans()
		cp := *j
		cp.Spans = append([]Span(nil), j.Spans...)
		out = append(out, &cp)
	}
	return out
}

// Stats snapshots the collector's aggregates. Paths are sorted by
// descending count for stable display.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Spans:        c.seq,
		Journeys:     len(c.order),
		Complete:     c.complete,
		Incomplete:   c.incomplete,
		Frozen:       c.flight.Frozen(),
		Duplicates:   c.duplicates,
		TunnelEvents: c.tunnelEvents,
	}
	for _, ps := range c.paths {
		st.Paths = append(st.Paths, *ps)
	}
	sort.Slice(st.Paths, func(a, b int) bool {
		if st.Paths[a].Count != st.Paths[b].Count {
			return st.Paths[a].Count > st.Paths[b].Count
		}
		return st.Paths[a].Path < st.Paths[b].Path
	})
	return st
}
