package journey

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// FreezeReason says why a journey was frozen into the flight recorder.
type FreezeReason uint8

// Freeze reasons.
const (
	// FreezeDrop: a span reported the packet dropped.
	FreezeDrop FreezeReason = iota
	// FreezeRetx: the consumer retransmitted (or dead-lettered) — the
	// frozen journey is the stalled transmission being given up on.
	FreezeRetx
	// FreezeQuarantine: router guard quarantined the packet (panic).
	FreezeQuarantine
	// FreezeLatency: the journey's total latency exceeded the running
	// p99.9 of its collector.
	FreezeLatency
	// FreezeCwndCut: a consumer's congestion controller cut its window —
	// the frozen journey is the timed-out transmission that signaled
	// congestion.
	FreezeCwndCut
	numFreezeReasons
)

var freezeNames = [numFreezeReasons]string{"drop", "retx", "quarantine", "latency", "cwnd-cut"}

// String names the freeze reason.
func (r FreezeReason) String() string {
	if int(r) < len(freezeNames) {
		return freezeNames[r]
	}
	return "freeze(?)"
}

// FrozenJourney is one flight-recorder entry: a deep snapshot of the
// journey at freeze time (all hops, full FN step detail), so the anomaly
// survives later eviction or mutation of the live journey.
type FrozenJourney struct {
	Reason FreezeReason
	// At is the freeze timestamp on the journey clock.
	At      int64
	Journey Journey
}

// FlightRecorder keeps the last N anomalous journeys in a bounded ring:
// rare events (one drop in a million packets) survive sampling and
// wraparound because anomalies — not volume — drive what is retained.
type FlightRecorder struct {
	mu     sync.Mutex
	ring   []FrozenJourney
	next   int
	frozen int64
	byKind [numFreezeReasons]int64
}

func newFlightRecorder(size int) *FlightRecorder {
	return &FlightRecorder{ring: make([]FrozenJourney, 0, size)}
}

// freeze snapshots j (under the recorder's own lock, so readers stay safe
// while the collector holds its lock). A journey already frozen for the
// same reason is not re-frozen (a drop span plus its terminal finalize
// would otherwise double-file).
func (f *FlightRecorder) freeze(j *Journey, reason FreezeReason, at int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.ring {
		fr := &f.ring[i]
		if fr.Journey.Trace == j.Trace && fr.Journey.Instance == j.Instance && fr.Reason == reason {
			return
		}
	}
	cp := *j
	cp.Spans = append([]Span(nil), j.Spans...)
	entry := FrozenJourney{Reason: reason, At: at, Journey: cp}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, entry)
	} else {
		f.ring[f.next] = entry
		f.next = (f.next + 1) % cap(f.ring)
	}
	f.frozen++
	f.byKind[reason]++
}

// Frozen returns how many journeys have been frozen in total (including
// ones since overwritten by ring wrap).
func (f *FlightRecorder) Frozen() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen
}

// FrozenBy returns the freeze count for one reason.
func (f *FlightRecorder) FrozenBy(r FreezeReason) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(r) < len(f.byKind) {
		return f.byKind[r]
	}
	return 0
}

// Entries returns the retained anomalies, oldest first.
func (f *FlightRecorder) Entries() []FrozenJourney {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FrozenJourney, 0, len(f.ring))
	if len(f.ring) == cap(f.ring) {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// String renders the entry: a freeze header plus the journey waterfall.
func (e FrozenJourney) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# frozen reason=%s at=%d\n", e.Reason, e.At)
	b.WriteString(e.Journey.String())
	return b.String()
}

// Dump writes every retained anomaly to w in dipdump-renderable form.
func (f *FlightRecorder) Dump(w io.Writer) error {
	for _, e := range f.Entries() {
		if _, err := io.WriteString(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
