package journey

import (
	"bufio"
	"io"
	"strings"
	"sync"
)

// DefaultEmitRing is the Emitter's span capacity when given n < 1.
const DefaultEmitRing = 4096

// Emitter is the live-deployment half of journey collection: it implements
// SpanSink by buffering spans in a bounded ring that Dump renders as
// '# span' text lines — the /journeys endpoint's body. A central Collector
// (or dipdump) re-ingests the lines from every process and stitches across
// them, the same split /trace uses for records.
type Emitter struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	added   uint64
	dropped uint64
}

// NewEmitter builds an emitter retaining the newest size spans.
func NewEmitter(size int) *Emitter {
	if size < 1 {
		size = DefaultEmitRing
	}
	return &Emitter{ring: make([]Span, 0, size)}
}

// AddSpan implements SpanSink.
func (e *Emitter) AddSpan(sp Span) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.added++
	sp.Seq = e.added
	if len(e.ring) < cap(e.ring) {
		e.ring = append(e.ring, sp)
		return
	}
	e.ring[e.next] = sp
	e.next = (e.next + 1) % cap(e.ring)
	e.dropped++
}

// Added returns how many spans the emitter has seen; Dropped how many were
// lost to ring wrap (spans a remote collector will flag as incomplete
// journeys rather than mis-stitch).
func (e *Emitter) Added() uint64   { e.mu.Lock(); defer e.mu.Unlock(); return e.added }
func (e *Emitter) Dropped() uint64 { e.mu.Lock(); defer e.mu.Unlock(); return e.dropped }

// Snapshot copies out the buffered spans, oldest first.
func (e *Emitter) Snapshot() []Span {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Span, 0, len(e.ring))
	if len(e.ring) == cap(e.ring) {
		out = append(out, e.ring[e.next:]...)
		out = append(out, e.ring[:e.next]...)
	} else {
		out = append(out, e.ring...)
	}
	return out
}

// Dump writes the buffered spans to w, one '# span' line each.
func (e *Emitter) Dump(w io.Writer) error {
	for _, sp := range e.Snapshot() {
		if _, err := io.WriteString(w, sp.String()); err != nil {
			return err
		}
	}
	return nil
}

// Ingest feeds '# span' lines from r into the collector, skipping
// everything else (so a whole dipdump-style mixed stream can be piped in).
// Returns the number of spans ingested.
func (c *Collector) Ingest(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(strings.TrimSpace(line), "# span ") {
			continue
		}
		sp, err := ParseSpan(line)
		if err != nil {
			continue
		}
		c.AddSpan(sp)
		n++
	}
	return n, sc.Err()
}
