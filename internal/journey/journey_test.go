package journey

import (
	"bytes"
	"strings"
	"testing"

	"dip/internal/core"
	"dip/internal/host"
	"dip/internal/profiles"
)

func TestFingerprintStableAcrossHops(t *testing.T) {
	pkt, err := host.BuildPacket(profiles.NDNInterest(0xAA000001), nil)
	if err != nil {
		t.Fatal(err)
	}
	id := Fingerprint(pkt)
	if id == 0 {
		t.Fatal("fingerprint must never be zero")
	}
	// Forwarding mutates only the hop limit; the fingerprint must survive.
	hopped := append([]byte(nil), pkt...)
	hopped[hopLimitByte]--
	if got := Fingerprint(hopped); got != id {
		t.Fatalf("fingerprint changed across a hop: %016x -> %016x", uint64(id), uint64(got))
	}
	// A different name is a different packet.
	other, err := host.BuildPacket(profiles.NDNInterest(0xAA000002), nil)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(other) == id {
		t.Fatal("distinct packets share a fingerprint")
	}
}

func TestTraceCtxRoundTrip(t *testing.T) {
	const want = TraceID(0xDEADBEEFCAFE0001)
	h := WithTraceCtx(profiles.NDNInterest(0xAA000001), want)
	pkt, err := host.BuildPacket(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := TraceOf(pkt); got != want {
		t.Fatalf("TraceOf = %016x, want the explicit TraceCtx %016x", uint64(got), uint64(want))
	}
	// Without a TraceCtx FN the ID falls back to the fingerprint.
	plain, err := host.BuildPacket(profiles.NDNInterest(0xAA000001), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := TraceOf(plain); got != Fingerprint(plain) {
		t.Fatalf("TraceOf without ctx = %016x, want fingerprint %016x",
			uint64(got), uint64(Fingerprint(plain)))
	}
	// Garbage is untraceable.
	if got := TraceOf([]byte{0xFF, 0xFF}); got != 0 {
		t.Fatalf("TraceOf(garbage) = %016x, want 0", uint64(got))
	}
}

func TestSpanStringRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: 0xABCD, Kind: SpanRouter, Node: "R1", Start: 100, End: 100,
			CPUNs: 4200, Verdict: core.VerdictForward, Proto: "ndn-interest",
			Name: 0xAA000001, HasName: true},
		{Trace: 0xABCD, Kind: SpanLink, Node: "R1->R2", Start: 100, End: 3100,
			QueueNs: 1000, WireNs: 2000},
		{Trace: 0xABCD, Kind: SpanLink, Node: "R2->R3", Start: 3100, End: 3100,
			Dropped: true, Cause: "loss"},
		{Trace: 0xABCD, Kind: SpanRouter, Node: "R3", Start: 99, End: 99,
			Verdict: core.VerdictDrop, Reason: core.DropHopLimit, Dropped: true},
		{Trace: 0x1, Kind: SpanTunnelEncap, Node: "T1", Start: 5, End: 5},
	}
	for _, want := range spans {
		got, err := ParseSpan(want.String())
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, want)
		}
	}
	if _, err := ParseSpan("# trace seq=1"); err == nil {
		t.Fatal("ParseSpan accepted a non-span line")
	}
}

// mkSpans builds a complete three-element journey: host send, link transit,
// router forward, link transit, host receive.
func mkSpans(tr TraceID) []Span {
	return []Span{
		{Trace: tr, Kind: SpanHostSend, Node: "C", Start: 0, End: 0, Proto: "ndn-interest"},
		{Trace: tr, Kind: SpanLink, Node: "C->R1", Start: 0, End: 1500, QueueNs: 500, WireNs: 1000},
		{Trace: tr, Kind: SpanRouter, Node: "R1", Start: 1500, End: 1500, CPUNs: 900, Verdict: core.VerdictForward},
		{Trace: tr, Kind: SpanLink, Node: "R1->P", Start: 1500, End: 2500, WireNs: 1000},
		{Trace: tr, Kind: SpanHostRecv, Node: "P", Start: 2500, End: 2500},
	}
}

func TestCollectorStitchesCompleteJourney(t *testing.T) {
	c := NewCollector(Config{})
	for _, sp := range mkSpans(0x42) {
		c.AddSpan(sp)
	}
	all := c.Journeys()
	if len(all) != 1 {
		t.Fatalf("got %d journeys, want 1", len(all))
	}
	j := all[0]
	if !j.Complete() || j.Incomplete {
		t.Fatalf("journey not complete: %+v", j)
	}
	if got := j.Hops(); got != 1 {
		t.Fatalf("Hops = %d, want 1 router", got)
	}
	if got := j.Path(); got != "C>R1>P" {
		t.Fatalf("Path = %q, want C>R1>P", got)
	}
	d := j.Decompose()
	if d.TotalNs != 2500 {
		t.Fatalf("TotalNs = %d, want 2500", d.TotalNs)
	}
	if sum := d.FNNs + d.QueueNs + d.WireNs + d.PITWaitNs; sum != d.TotalNs {
		t.Fatalf("decomposition does not sum: fn=%d queue=%d wire=%d pitwait=%d total=%d",
			d.FNNs, d.QueueNs, d.WireNs, d.PITWaitNs, d.TotalNs)
	}
	if d.QueueNs != 500 || d.WireNs != 2000 {
		t.Fatalf("queue=%d wire=%d, want 500/2000", d.QueueNs, d.WireNs)
	}
	if d.CPUNs != 900 {
		t.Fatalf("CPUNs = %d, want 900", d.CPUNs)
	}
	st := c.Stats()
	if st.Complete != 1 || st.Incomplete != 0 || st.Duplicates != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Paths) != 1 || st.Paths[0].Count != 1 {
		t.Fatalf("path stats: %+v", st.Paths)
	}
}

func TestCollectorDuplicatePacketsGetOwnInstances(t *testing.T) {
	c := NewCollector(Config{})
	// A fault-injected duplicate: the same packet (same trace ID) crosses
	// the same elements twice. Each copy must get its own timeline.
	c.AddSpan(Span{Trace: 7, Kind: SpanLink, Node: "R1->R2", Start: 0, End: 10, WireNs: 10})
	c.AddSpan(Span{Trace: 7, Kind: SpanRouter, Node: "R2", Start: 10, End: 10, Verdict: core.VerdictForward})
	c.AddSpan(Span{Trace: 7, Kind: SpanLink, Node: "R1->R2", Start: 0, End: 25, WireNs: 25}) // the copy
	c.AddSpan(Span{Trace: 7, Kind: SpanRouter, Node: "R2", Start: 25, End: 25, Verdict: core.VerdictForward})
	insts := c.JourneysOf(7)
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	if insts[0].Instance == insts[1].Instance {
		t.Fatal("instances share an index")
	}
	if len(insts[0].Spans) != 2 || len(insts[1].Spans) != 2 {
		t.Fatalf("span split %d/%d, want 2/2", len(insts[0].Spans), len(insts[1].Spans))
	}
	if st := c.Stats(); st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
}

func TestCollectorReorderedArrival(t *testing.T) {
	c := NewCollector(Config{})
	spans := mkSpans(0x99)
	// Deliver in scrambled order: the terminal host-recv span first would
	// finalize prematurely, so scramble everything except the terminal.
	order := []int{2, 0, 3, 1, 4}
	for _, i := range order {
		c.AddSpan(spans[i])
	}
	all := c.Journeys()
	if len(all) != 1 || !all[0].Complete() {
		t.Fatalf("reordered spans did not stitch into one complete journey: %+v", all)
	}
	got := all[0].Spans
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("spans not sorted by start: %d before %d", got[i-1].Start, got[i].Start)
		}
	}
	if got[0].Kind != SpanHostSend || got[len(got)-1].Kind != SpanHostRecv {
		t.Fatalf("stitched order wrong: first=%s last=%s", got[0].Kind, got[len(got)-1].Kind)
	}
}

func TestCollectorEvictionFlagsIncomplete(t *testing.T) {
	c := NewCollector(Config{MaxJourneys: 2})
	// Three partial journeys; the first must be evicted and flagged.
	for tr := TraceID(1); tr <= 3; tr++ {
		c.AddSpan(Span{Trace: tr, Kind: SpanHostSend, Node: "C", Start: int64(tr), End: int64(tr)})
	}
	st := c.Stats()
	if st.Journeys != 2 {
		t.Fatalf("live journeys = %d, want 2", st.Journeys)
	}
	if st.Incomplete != 1 {
		t.Fatalf("Incomplete = %d, want 1", st.Incomplete)
	}
	// The evicted journey is gone from the index; its trace can reappear
	// as a fresh instance without confusion.
	if n := len(c.JourneysOf(1)); n != 0 {
		t.Fatalf("evicted trace still indexed: %d instances", n)
	}
}

func TestFlightRecorderFreezesDrop(t *testing.T) {
	c := NewCollector(Config{})
	c.AddSpan(Span{Trace: 5, Kind: SpanHostSend, Node: "C", Start: 0, End: 0})
	c.AddSpan(Span{Trace: 5, Kind: SpanLink, Node: "C->R1", Start: 0, End: 100,
		WireNs: 100, Dropped: true, Cause: "loss"})
	entries := c.Flight().Entries()
	if len(entries) != 1 {
		t.Fatalf("got %d frozen entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Reason != FreezeDrop {
		t.Fatalf("reason = %s, want drop", e.Reason)
	}
	dropped := e.Journey.DroppedAt()
	if dropped == nil || dropped.Node != "C->R1" || dropped.Cause != "loss" {
		t.Fatalf("drop attribution wrong: %+v", dropped)
	}
	// Freezing again for the same reason dedups.
	c.FreezeTrace(5, FreezeDrop, 200)
	if n := len(c.Flight().Entries()); n != 1 {
		t.Fatalf("dedup failed: %d entries", n)
	}
	// A different reason is a new entry.
	c.FreezeTrace(5, FreezeQuarantine, 300)
	if got := c.Flight().FrozenBy(FreezeQuarantine); got != 1 {
		t.Fatalf("FrozenBy(quarantine) = %d, want 1", got)
	}
}

func TestFlightRecorderFreezesRetxPredecessor(t *testing.T) {
	c := NewCollector(Config{})
	c.AddSpan(Span{Trace: 9, Kind: SpanHostSend, Node: "C", Start: 0, End: 0,
		Name: 0xAA000001, HasName: true})
	c.AddSpan(Span{Trace: 9, Kind: SpanHostRetx, Node: "C", Start: 5000, End: 5000,
		Name: 0xAA000001, HasName: true})
	if got := c.Flight().FrozenBy(FreezeRetx); got != 1 {
		t.Fatalf("FrozenBy(retx) = %d, want 1", got)
	}
	// The retx opened a second instance.
	if n := len(c.JourneysOf(9)); n != 2 {
		t.Fatalf("instances = %d, want 2 (original + retx)", n)
	}
}

func TestFlightRecorderLatencyExcursion(t *testing.T) {
	c := NewCollector(Config{LatencyMinSamples: 8})
	finish := func(tr TraceID, total int64) {
		c.AddSpan(Span{Trace: tr, Kind: SpanHostSend, Node: "C", Start: 0, End: 0})
		c.AddSpan(Span{Trace: tr, Kind: SpanHostRecv, Node: "P", Start: total, End: total})
	}
	for tr := TraceID(1); tr <= 8; tr++ {
		finish(tr, 1000)
	}
	if got := c.Flight().FrozenBy(FreezeLatency); got != 0 {
		t.Fatalf("premature latency freeze: %d", got)
	}
	finish(100, 1_000_000_000) // three decades above the population
	if got := c.Flight().FrozenBy(FreezeLatency); got != 1 {
		t.Fatalf("FrozenBy(latency) = %d, want 1", got)
	}
}

func TestEmitterIngestRoundTrip(t *testing.T) {
	e := NewEmitter(16)
	spans := mkSpans(0x77)
	for _, sp := range spans {
		e.AddSpan(sp)
	}
	if e.Added() != uint64(len(spans)) || e.Dropped() != 0 {
		t.Fatalf("added=%d dropped=%d", e.Added(), e.Dropped())
	}
	var buf bytes.Buffer
	if err := e.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	// Interleave noise the way a real /journeys scrape would carry it.
	text := "# journeys from R1\n" + buf.String() + "\nnot a span\n"
	c := NewCollector(Config{})
	n, err := c.Ingest(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(spans) {
		t.Fatalf("ingested %d spans, want %d", n, len(spans))
	}
	all := c.Journeys()
	if len(all) != 1 || !all[0].Complete() {
		t.Fatalf("ingested spans did not stitch: %+v", all)
	}
	if got := all[0].Path(); got != "C>R1>P" {
		t.Fatalf("Path = %q after ingest, want C>R1>P", got)
	}
}

func TestEmitterRingBounds(t *testing.T) {
	e := NewEmitter(4)
	for i := 0; i < 10; i++ {
		e.AddSpan(Span{Trace: TraceID(i + 1), Kind: SpanRouter, Node: "R"})
	}
	if got := len(e.Snapshot()); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
	if e.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", e.Dropped())
	}
}

// A cwnd-cut span (zero trace, name only) freezes every live journey
// carrying that content name — the congestion event's evidence survives.
func TestFlightRecorderFreezesCwndCutByName(t *testing.T) {
	c := NewCollector(Config{})
	const name = 0xAA000042
	c.AddSpan(Span{Trace: 31, Kind: SpanHostSend, Node: "C", Start: 0, End: 0,
		Name: name, HasName: true})
	c.AddSpan(Span{Trace: 31, Kind: SpanLink, Node: "C->R1", Start: 10, End: 400,
		QueueNs: 350, WireNs: 40})
	// The fetcher's controller cuts its window blaming this name.
	c.AddSpan(Span{Kind: SpanHostCwndCut, Node: "C", Start: 5000, End: 5000,
		Name: name, HasName: true})
	if got := c.Flight().FrozenBy(FreezeCwndCut); got != 1 {
		t.Fatalf("FrozenBy(cwnd-cut) = %d, want 1", got)
	}
	entries := c.Flight().Entries()
	if len(entries) != 1 || entries[0].Reason != FreezeCwndCut {
		t.Fatalf("entries %+v", entries)
	}
	// The frozen journey is the stalled transmission, queue time included.
	froze := entries[0].Journey
	if len(froze.Spans) != 2 || froze.Spans[1].QueueNs != 350 {
		t.Fatalf("frozen journey lost its spans: %+v", froze.Spans)
	}
	// Spans naming other content are untouched.
	c.AddSpan(Span{Kind: SpanHostCwndCut, Node: "C", Start: 6000, End: 6000,
		Name: 0xAA000099, HasName: true})
	if got := c.Flight().Frozen(); got != 1 {
		t.Fatalf("unrelated name froze a journey: %d", got)
	}
}
