package journey

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"dip/internal/core"
	"dip/internal/host"
	"dip/internal/netsim"
	"dip/internal/tunnel"
)

// stripes is the sampling-counter stripe count, mirroring internal/trace:
// pooled contexts hash stably onto stripes by address, so concurrent
// workers do not contend on one atomic.
const stripes = 16

type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// RouterTap wraps a router's installed recorder (metrics or trace recorder)
// and additionally emits one SpanRouter per sampled packet, bracketing
// Algorithm 1 from ingress to verdict. It implements core.PacketRecorder;
// install with Router.SetRecorder. The unsampled path is one striped
// counter increment plus the wrapped recorder's own cost — zero
// allocations (pinned by zeroalloc_test.go).
type RouterTap struct {
	node  string
	sink  SpanSink
	inner core.Recorder
	// iprec is inner when it also implements the per-packet hooks (a
	// trace.Recorder), asserted once at construction like the engine does.
	iprec   core.PacketRecorder
	every   uint64
	now     func() int64
	counter [stripes]paddedCounter
	pool    sync.Pool
}

// tapSlot is the per-sampled-packet state: the span under construction and
// the TraceSink the packet had before the tap interposed (a trace.Recorder
// ring slot when the packet is also trace-sampled).
type tapSlot struct {
	tap       *RouterTap
	inner     core.TraceSink
	wallStart int64
	span      Span
	steps     atomic.Int32
}

// Step implements core.TraceSink: forward to the displaced sink and record
// the FN into the span's own step list.
func (s *tapSlot) Step(k core.Key, d time.Duration) {
	if s.inner != nil {
		s.inner.Step(k, d)
	}
	i := s.steps.Add(1) - 1
	if int(i) < MaxSteps {
		s.span.Steps[i] = Step{Key: k, Ns: d.Nanoseconds()}
	}
}

// NewRouterTap builds a span-emitting recorder for the named router. Every
// every-th packet gets a span (1 = all); inner (may be nil) receives all
// recorder callbacks unchanged; now is the journey clock (nil = wall time).
func NewRouterTap(node string, sink SpanSink, inner core.Recorder, every int, now func() int64) *RouterTap {
	if every < 1 {
		every = 1
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	t := &RouterTap{node: node, sink: sink, inner: inner, every: uint64(every), now: now}
	t.iprec, _ = inner.(core.PacketRecorder)
	t.pool.New = func() any { return new(tapSlot) }
	return t
}

// RecordOp implements core.Recorder by forwarding.
func (t *RouterTap) RecordOp(k core.Key, d time.Duration) {
	if t.inner != nil {
		t.inner.RecordOp(k, d)
	}
}

// RecordDrop implements core.Recorder by forwarding.
func (t *RouterTap) RecordDrop(r core.DropReason) {
	if t.inner != nil {
		t.inner.RecordDrop(r)
	}
}

// BeginPacket implements core.PacketRecorder: forward the bracket to the
// wrapped recorder first (so a trace.Recorder can claim its ring slot),
// then decide sampling and, on a hit, interpose a tapSlot as the context's
// TraceSink, chaining to whatever sink the wrapped recorder attached.
func (t *RouterTap) BeginPacket(ctx *core.ExecContext) {
	if t.iprec != nil {
		t.iprec.BeginPacket(ctx)
	}
	s := uintptr(unsafe.Pointer(ctx)) >> 4 & (stripes - 1)
	if t.counter[s].n.Add(1)%t.every != 0 {
		return
	}
	sl := t.pool.Get().(*tapSlot)
	sl.tap = t
	sl.inner = ctx.Trace
	sl.steps.Store(0)
	sl.wallStart = time.Now().UnixNano()
	v := ctx.View
	sl.span = Span{
		Trace: TraceOfView(v),
		Kind:  SpanRouter,
		Node:  t.node,
		Start: t.now(),
		Proto: ProtoOf(v),
	}
	if name, ok := nameOfView(v); ok {
		sl.span.Name, sl.span.HasName = name, true
	}
	ctx.Trace = sl
}

// EndPacket implements core.PacketRecorder: restore the displaced
// TraceSink (a trace.Recorder asserts its own slot type out of ctx.Trace,
// so the restore must happen before the forward), forward the bracket,
// then seal and emit the span.
func (t *RouterTap) EndPacket(ctx *core.ExecContext) {
	sl, ok := ctx.Trace.(*tapSlot)
	if !ok || sl == nil || sl.tap != t {
		if t.iprec != nil {
			t.iprec.EndPacket(ctx)
		}
		return
	}
	ctx.Trace = sl.inner
	if t.iprec != nil {
		t.iprec.EndPacket(ctx)
	}
	sp := &sl.span
	sp.End = t.now()
	if sp.End < sp.Start {
		sp.End = sp.Start
	}
	sp.CPUNs = time.Now().UnixNano() - sl.wallStart
	steps := sl.steps.Load()
	if steps > MaxSteps {
		steps = MaxSteps
	}
	sp.NSteps = uint8(steps)
	sp.Verdict = ctx.Verdict
	sp.Reason = ctx.Reason
	sp.Dropped = ctx.Verdict == core.VerdictDrop
	if t.sink != nil {
		t.sink.AddSpan(*sp)
	}
	sl.inner = nil
	t.pool.Put(sl)
}

// Seen returns how many packets passed the tap's sampling decision.
func (t *RouterTap) Seen() uint64 {
	var n uint64
	for i := range t.counter {
		n += t.counter[i].n.Load()
	}
	return n
}

// NewLinkTap adapts a SpanSink into a netsim.TransitObserver for the link
// labeled node ("R1->R2"): every observed transit becomes one SpanLink with
// the queueing vs wire split the simulator already computed. Transits whose
// packet yields no trace ID (probe control traffic) are skipped.
func NewLinkTap(node string, sink SpanSink) netsim.TransitObserver {
	return func(tr netsim.Transit) {
		id := TraceOf(tr.Pkt)
		if id == 0 {
			return
		}
		sp := Span{
			Trace:   id,
			Kind:    SpanLink,
			Node:    node,
			Start:   int64(tr.Offered),
			End:     int64(tr.Arrival),
			QueueNs: int64(tr.Queue),
			WireNs:  int64(tr.Wire),
			Dropped: tr.Dropped,
			Cause:   tr.Cause,
		}
		if sp.Dropped {
			// A dropped packet never reaches the far end; its span extends
			// only through the phase that killed it.
			sp.End = sp.Start + sp.QueueNs + sp.WireNs
		}
		sink.AddSpan(sp)
	}
}

// NewTunnelTap adapts a SpanSink into a tunnel.Observer for the tunnel
// endpoint labeled node: encap/decap become point spans on the inner
// packet's journey; probe misses and failovers (which concern no single
// packet) become zero-trace point spans the Collector files as standalone
// tunnel-health events.
func NewTunnelTap(node string, sink SpanSink, now func() int64) tunnel.Observer {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return func(ev tunnel.Event, dipPkt []byte) {
		sp := Span{Node: node, Start: now()}
		sp.End = sp.Start
		switch ev {
		case tunnel.EventEncap:
			sp.Kind = SpanTunnelEncap
		case tunnel.EventDecap:
			sp.Kind = SpanTunnelDecap
		case tunnel.EventProbeMiss:
			sp.Kind = SpanTunnelProbeMiss
		case tunnel.EventFailover:
			sp.Kind = SpanTunnelFailover
		default:
			return
		}
		if len(dipPkt) > 0 {
			sp.Trace = TraceOf(dipPkt)
			if sp.Trace == 0 {
				return
			}
		}
		sink.AddSpan(sp)
	}
}

// NewFetcherTap adapts a SpanSink into a host.FetchObserver for the
// consumer labeled node: sends, retransmissions (which open a new journey
// instance at the Collector), satisfactions and dead letters become host
// spans. The satisfy span carries the data packet's trace ID, so it
// terminates the data journey; the interest journey is linked by name.
func NewFetcherTap(node string, sink SpanSink, now func() int64) host.FetchObserver {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return func(ev host.FetchEvent, name uint32, pkt []byte) {
		sp := Span{Node: node, Start: now(), Name: name, HasName: true}
		sp.End = sp.Start
		switch ev {
		case host.FetchSend:
			sp.Kind = SpanHostSend
		case host.FetchRetx:
			sp.Kind = SpanHostRetx
		case host.FetchSatisfy:
			sp.Kind = SpanHostSatisfy
		case host.FetchDeadLetter:
			sp.Kind = SpanHostDeadLetter
			sp.Dropped = true
			sp.Cause = "dead-letter"
		case host.FetchCwndCut:
			sp.Kind = SpanHostCwndCut
		default:
			return
		}
		if len(pkt) > 0 {
			sp.Trace = TraceOf(pkt)
		}
		sink.AddSpan(sp)
	}
}
