package topo

import (
	"strings"
	"testing"

	"dip/internal/journey"
)

const journeyTopo = `
router R1
router R2
router R3
host   C
host   P

link C R1:0
link R1:1 R2:0 1ms down=6.5ms-7.5ms seed=3
link R2:1 R3:0
link R3:1 P

name R1 aa000000/8 1
name R2 aa000000/8 1
name R3 aa000000/8 1

produce P aa000001 "the bits"
produce P aa000002 "the bits"
interest C aa000001 at 0ms
interest C aa000002 at 6ms
`

func runJourneyTopo(t *testing.T) (*Topology, *journey.Collector, []Delivery) {
	t.Helper()
	tp, err := Parse(strings.NewReader(journeyTopo))
	if err != nil {
		t.Fatal(err)
	}
	c := tp.EnableJourneys(1)
	if tp.EnableJourneys(1) != c {
		t.Fatal("EnableJourneys not idempotent")
	}
	return tp, c, tp.Run()
}

func TestEnableJourneysStitchesAndAttributes(t *testing.T) {
	_, c, deliveries := runJourneyTopo(t)
	// Interest 2 dies in the R1->R2 down window; interest 1 round-trips.
	if len(deliveries) != 1 {
		t.Fatalf("deliveries %+v, want exactly the first interest's data", deliveries)
	}

	var interest, data *journey.Journey
	for _, j := range c.Journeys() {
		switch j.Path() {
		case "C>R1>R2>R3>P":
			if j.Complete() && j.DroppedAt() == nil {
				interest = j
			}
		case "P>R3>R2>R1>C":
			data = j
		}
	}
	if interest == nil || data == nil {
		t.Fatalf("missing journeys: interest=%v data=%v", interest, data)
	}
	for _, j := range []*journey.Journey{interest, data} {
		if j.Hops() != 3 {
			t.Fatalf("journey %s has %d router hops, want 3", j.Path(), j.Hops())
		}
		d := j.Decompose()
		if sum := d.FNNs + d.QueueNs + d.WireNs + d.PITWaitNs; sum != d.TotalNs {
			t.Fatalf("journey %s decomposition does not sum: %+v", j.Path(), d)
		}
		// Four 1ms links, infinite bandwidth: the whole 4ms is wire time.
		if d.TotalNs != 4_000_000 || d.WireNs != 4_000_000 {
			t.Fatalf("journey %s total=%dns wire=%dns, want 4ms wire-only", j.Path(), d.TotalNs, d.WireNs)
		}
		if d.CPUNs <= 0 {
			t.Fatalf("journey %s has no router CPU time", j.Path())
		}
	}

	// The flight recorder froze the dropped interest with the fault pinned
	// to the impaired link, not a neighboring hop.
	entries := c.Flight().Entries()
	if len(entries) != 1 {
		t.Fatalf("flight recorder has %d entries, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Reason != journey.FreezeDrop {
		t.Fatalf("freeze reason %s, want drop", e.Reason)
	}
	dropped := e.Journey.DroppedAt()
	if dropped == nil {
		t.Fatal("frozen journey has no dropped span")
	}
	if dropped.Node != "R1->R2" || dropped.Cause != "down" {
		t.Fatalf("drop attributed to %q cause %q, want R1->R2/down", dropped.Node, dropped.Cause)
	}

	st := c.Stats()
	if st.Complete < 2 || st.Frozen != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEnableJourneysDeterministic(t *testing.T) {
	_, c1, _ := runJourneyTopo(t)
	_, c2, _ := runJourneyTopo(t)
	j1, j2 := c1.Journeys(), c2.Journeys()
	if len(j1) != len(j2) {
		t.Fatalf("journey counts differ: %d vs %d", len(j1), len(j2))
	}
	for i := range j1 {
		d1, d2 := j1[i].Decompose(), j2[i].Decompose()
		// CPUNs is wall clock and legitimately varies; everything on the
		// virtual clock must be bit-identical across runs.
		if j1[i].Trace != j2[i].Trace || j1[i].Path() != j2[i].Path() ||
			d1.TotalNs != d2.TotalNs || d1.WireNs != d2.WireNs ||
			d1.QueueNs != d2.QueueNs || d1.PITWaitNs != d2.PITWaitNs {
			t.Fatalf("journey %d differs across runs:\n %s %+v\n %s %+v",
				i, j1[i].Path(), d1, j2[i].Path(), d2)
		}
	}
}
