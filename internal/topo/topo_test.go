package topo

import (
	"strings"
	"testing"
	"time"

	"dip/internal/journey"
)

const demoTopo = `
# consumer -- R1 -- R2 -- producer, with a cache at R1
router R1 cache=16
router R2
host   C
host   P

link C R1:0
link R1:1 R2:0 2ms
link R2:1 P

name R1 aa000000/8 1
name R2 aa000000/8 1

produce P aa000001 "the bits"
interest C aa000001
interest C aa000001 at 100ms
`

func TestParseAndRunNDNScenario(t *testing.T) {
	tp, err := Parse(strings.NewReader(demoTopo))
	if err != nil {
		t.Fatal(err)
	}
	deliveries := tp.Run()
	var dataToC []Delivery
	for _, d := range deliveries {
		if d.Host == "C" && d.Profile == "data" {
			dataToC = append(dataToC, d)
		}
	}
	if len(dataToC) != 2 {
		t.Fatalf("consumer data deliveries: %+v", deliveries)
	}
	for _, d := range dataToC {
		if d.Payload != "the bits" {
			t.Errorf("payload %q", d.Payload)
		}
	}
	// The second interest (at 100ms) is served from R1's cache: it must
	// arrive much sooner after issue (2ms round trip to R1, not 6ms to P).
	if gap := dataToC[1].At - 100*time.Millisecond; gap > 3*time.Millisecond {
		t.Errorf("cache not used: second delivery %v after issue", gap)
	}
	var report strings.Builder
	tp.Report(&report)
	if !strings.Contains(report.String(), "router R1:") {
		t.Errorf("report:\n%s", report.String())
	}
}

func TestParseIPv4Send(t *testing.T) {
	src := `
router R1
host A
host B
link A R1:0
link R1:1 B
route32 R1 10.0.0.0/8 1
send A ipv4 192.0.2.1 10.0.0.9 "over ip" at 5ms
`
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	deliveries := tp.Run()
	if len(deliveries) != 1 || deliveries[0].Host != "B" || deliveries[0].Payload != "over ip" {
		t.Fatalf("deliveries: %+v", deliveries)
	}
	if deliveries[0].At < 5*time.Millisecond {
		t.Errorf("scheduled time ignored: %v", deliveries[0].At)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown directive", "frobnicate x"},
		{"router redefined", "router R\nrouter R"},
		{"host redefined", "host H\nhost H"},
		{"link unknown node", "link A:0 B:0"},
		{"link host with port", "host H\nrouter R\nlink H:1 R:0"},
		{"link router without port", "router R\nhost H\nlink R H"},
		{"bad delay", "router R\nhost H\nlink H R:0 soon"},
		{"route unknown router", "route32 R 10.0.0.0/8 1"},
		{"route bad prefix", "router R\nroute32 R 10.0.0.0 1"},
		{"route bad port", "router R\nroute32 R 10.0.0.0/8 x"},
		{"produce unknown host", "produce H aa 1"},
		{"interest unknown host", "interest H aa000001"},
		{"send bad proto", "host H\nsend H ipv6 a b c"},
		{"bad secret", "router R secret=zz"},
		{"bad cache", "router R cache=many"},
		{"bad cscold", "router R cache=4 cscold=lots"},
		{"cscold without cache", "router R cscold=8"},
		{"csslot without cscold", "router R cache=4 csslot=128"},
		{"unknown router option", "router R wings=2"},
		{"bad at", "host H\ninterest H aa000001 at soon"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Errorf("accepted:\n%s", c.src)
			}
		})
	}
}

func TestRouterOptions(t *testing.T) {
	src := `
router R cache=4 secret=00112233445566778899aabbccddeeff hopindex=2 requirepass
`
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	rn := tp.routers["R"]
	if rn.cfg.ContentStore == nil || rn.cfg.Secret == nil ||
		rn.cfg.HopIndex != 2 || !rn.cfg.RequirePass {
		t.Errorf("options lost: %+v", rn.cfg)
	}
}

// TestBatchedRouterScenario runs the NDN demo with the routers declared
// batched: results must be identical to the unbatched run (the burst
// dataplane changes scheduling granularity, not outcomes), and the queue=
// option must be rejected without batch=.
func TestBatchedRouterScenario(t *testing.T) {
	batched := strings.Replace(demoTopo, "router R1 cache=16", "router R1 cache=16 batch=64 queue=128", 1)
	batched = strings.Replace(batched, "router R2\n", "router R2 batch=8\n", 1)
	tp, err := Parse(strings.NewReader(batched))
	if err != nil {
		t.Fatal(err)
	}
	if tp.routers["R1"].in == nil || tp.routers["R2"].in == nil {
		t.Fatal("batch= did not install an ingress")
	}
	deliveries := tp.Run()
	var dataToC []Delivery
	for _, d := range deliveries {
		if d.Host == "C" && d.Profile == "data" {
			dataToC = append(dataToC, d)
		}
	}
	if len(dataToC) != 2 {
		t.Fatalf("consumer data deliveries under batching: %+v", deliveries)
	}
	if gap := dataToC[1].At - 100*time.Millisecond; gap > 3*time.Millisecond {
		t.Errorf("cache not used under batching: second delivery %v after issue", gap)
	}

	if _, err := Parse(strings.NewReader("router R queue=64\n")); err == nil {
		t.Error("queue= without batch= accepted")
	}
}

// TestColdTierScenario drives the cscold= DSL end to end in synchronous
// mode: a 2-entry hot tier forces an admitted object out to the cold
// arena, and a later interest for it is served from R1's disk tier — a
// local 2ms round trip, not the 6ms producer path — via the Schedule(0)
// re-injection event, with the cs-cold journey span attached.
func TestColdTierScenario(t *testing.T) {
	src := `
router R1 cache=2 cscold=16 csslot=256
router R2
host   C
host   P

link C R1:0
link R1:1 R2:0 2ms
link R2:1 P

name R1 aa000000/8 1
name R2 aa000000/8 1

produce P aa000001 "the one"
produce P aa000002 "the two"
produce P aa000003 "the three"

interest C aa000001
interest C aa000001 at 20ms
interest C aa000002 at 40ms
interest C aa000002 at 60ms
interest C aa000003 at 80ms
interest C aa000001 at 200ms
`
	// The 20ms re-request touches aa000001 in the hot tier, so when the
	// aa000003 insert at ~83ms overflows cache=2 it is the LRU *and*
	// admissible: insert-on-second-hit spills it to the arena. The 200ms
	// interest then finds it only in the cold index.
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	jc := tp.EnableJourneys(1)
	deliveries := tp.Run()

	var dataToC []Delivery
	for _, d := range deliveries {
		if d.Host == "C" && d.Profile == "data" {
			dataToC = append(dataToC, d)
		}
	}
	if len(dataToC) != 6 {
		t.Fatalf("consumer data deliveries: %+v", deliveries)
	}
	last := dataToC[len(dataToC)-1]
	if last.Payload != "the one" {
		t.Errorf("cold-served payload %q", last.Payload)
	}
	// Served from R1's arena: the consumer sees a local round trip (~2ms),
	// not the 6ms path through R2 to the producer.
	if gap := last.At - 200*time.Millisecond; gap > 3*time.Millisecond {
		t.Errorf("cold tier not used: final delivery %v after issue", gap)
	}

	st, ok := tp.TierStats("R1")
	if !ok {
		t.Fatal("TierStats: R1 has no cold tier")
	}
	if st.Spilled < 1 || st.ColdHits < 1 || st.Reinjected != 1 || st.ReadErrors != 0 {
		t.Errorf("tier stats: %+v", st)
	}

	// The re-injection event must carry a cs-cold span on R1, stitched
	// into the recovered data packet's journey.
	found := false
	for _, j := range jc.Journeys() {
		for _, sp := range j.Spans {
			if sp.Kind == journey.SpanCSCold && sp.Node == "R1" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no cs-cold span recorded for the cold read")
	}

	tp.Close() // idempotent with the deferred close
}

func TestTokenize(t *testing.T) {
	got := tokenize(`produce P aa "two words"  tail`)
	want := []string{"produce", "P", "aa", "two words", "tail"}
	if len(got) != len(want) {
		t.Fatalf("got %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q", i, got[i])
		}
	}
	// Unterminated quote: rest of line becomes one token.
	got = tokenize(`a "unterminated rest`)
	if len(got) != 2 || got[1] != "unterminated rest" {
		t.Errorf("got %q", got)
	}
}

// A sampled run turns a scenario into a counter time series: a burst of
// IPv4 sends must appear as per-interval received deltas at the right
// ticks, and the series must reconcile with the final totals.
func TestRunSampledTimeSeries(t *testing.T) {
	const burstTopo = `
router R1
host   H1
host   H2
link H1 R1:0
link R1:1 H2
route32 R1 10.0.0.0/8 1

send H1 ipv4 1.1.1.1 10.0.0.9 "a" at 1ms
send H1 ipv4 1.1.1.1 10.0.0.9 "b" at 2ms
send H1 ipv4 1.1.1.1 10.0.0.9 "c" at 25ms
`
	tp, err := Parse(strings.NewReader(burstTopo))
	if err != nil {
		t.Fatal(err)
	}
	deliveries, series := tp.RunSampled(10 * time.Millisecond)
	if len(deliveries) != 3 {
		t.Fatalf("deliveries: %+v", deliveries)
	}
	if len(series) < 3 {
		t.Fatalf("only %d samples for a 25ms scenario at 10ms intervals", len(series))
	}
	if series[0].At != 0 || series[0].Routers["R1"].Received != 0 {
		t.Fatalf("missing zero baseline: %+v", series[0])
	}
	// Interval (0,10ms]: the 1ms and 2ms packets; (20ms,30ms]: the 25ms one.
	d1 := series[1].Routers["R1"].Delta(series[0].Routers["R1"])
	if d1.Received != 2 || d1.Forwarded != 2 {
		t.Errorf("first interval delta %+v, want 2 received/forwarded", d1)
	}
	last := series[len(series)-1].Routers["R1"]
	if last.Received != 3 || last.Forwarded != 3 {
		t.Errorf("final sample %+v, want 3 received/forwarded", last)
	}
	// Ticks are regular interval boundaries, monotone, with monotone counts.
	for i := 1; i < len(series); i++ {
		if series[i].At != time.Duration(i)*10*time.Millisecond {
			t.Errorf("sample %d at %v, want a 10ms boundary", i, series[i].At)
		}
		if series[i].Routers["R1"].Received < series[i-1].Routers["R1"].Received {
			t.Error("received count not monotone across samples")
		}
	}
}

// With a down window on the consumer link, the time series localizes the
// loss: dropped-in-flight packets show up only in the window's intervals.
func TestRunSampledLocalizesDownWindow(t *testing.T) {
	const downTopo = `
router R1
host   H1
host   H2
link H1 R1:0 1ms down=5ms-15ms seed=3
link R1:1 H2
route32 R1 10.0.0.0/8 1

send H1 ipv4 1.1.1.1 10.0.0.9 "early" at 1ms
send H1 ipv4 1.1.1.1 10.0.0.9 "lost" at 8ms
send H1 ipv4 1.1.1.1 10.0.0.9 "late" at 20ms
`
	tp, err := Parse(strings.NewReader(downTopo))
	if err != nil {
		t.Fatal(err)
	}
	deliveries, series := tp.RunSampled(10 * time.Millisecond)
	if len(deliveries) != 2 {
		t.Fatalf("want the 8ms send eaten by the down window: %+v", deliveries)
	}
	// The router never received the lost packet, so its receive deltas are
	// 1 in the first interval and 1 after the link healed — never 2.
	for i := 1; i < len(series); i++ {
		d := series[i].Routers["R1"].Delta(series[i-1].Routers["R1"])
		if d.Received > 1 {
			t.Errorf("interval ending %v received %d packets through a down link", series[i].At, d.Received)
		}
	}
	if final := series[len(series)-1].Routers["R1"]; final.Received != 2 {
		t.Errorf("router received %d total, want 2 (one eaten)", final.Received)
	}
}
