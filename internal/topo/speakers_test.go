package topo

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// diamondTopo builds the reconvergence scenario: H1–A, then a diamond
// A–B–D / A–C–D, then D–H2. Only D knows the 10.0.2.0/24 prefix
// statically (toward H2); everyone else learns it in band. The C leg is
// slower (5ms) so A deterministically converges onto the B path first.
// Probes flow H1→H2 every 5ms; the B–D link dies at 100ms.
func diamondTopo(linkdown string) string {
	var b strings.Builder
	b.WriteString(`
speakers refresh=10ms hold=30ms horizon=300ms
router A
router B
router C
router D
host H1
host H2
link H1 A:0
link A:1 B:0 1ms
link A:2 C:0 5ms
link B:1 D:0 1ms
link C:1 D:1 5ms
link D:2 H2 1ms
route32 D 10.0.2.0/24 2
`)
	b.WriteString(linkdown + "\n")
	for at := 20; at <= 280; at += 5 {
		fmt.Fprintf(&b, "send H1 ipv4 10.0.1.1 10.0.2.9 \"p%d\" at %dms\n", at, at)
	}
	return b.String()
}

// runDiamond runs the scenario and returns the H2 delivery times.
func runDiamond(t *testing.T, src string) (*Topology, []time.Duration) {
	t.Helper()
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	tp.EnableJourneys(1)
	var arrivals []time.Duration
	for _, d := range tp.Run() {
		if d.Host == "H2" {
			arrivals = append(arrivals, d.At)
		}
	}
	return tp, arrivals
}

// blackhole returns the largest inter-arrival gap that starts at or after
// the fault time, and the instant service resumed.
func blackhole(arrivals []time.Duration, fault time.Duration) (gap time.Duration, resumed time.Duration) {
	prev := time.Duration(0)
	for _, at := range arrivals {
		if at > fault && prev >= fault-10*time.Millisecond && at-prev > gap {
			gap, resumed = at-prev, at
		}
		prev = at
	}
	return gap, resumed
}

func TestSpeakersConvergeAndCarryTraffic(t *testing.T) {
	// No fault: in-band convergence alone must deliver every probe.
	tp, arrivals := runDiamond(t, diamondTopo("# no fault"))
	if len(arrivals) != 53 {
		t.Fatalf("delivered %d/53 probes", len(arrivals))
	}
	// A learned the prefix via route exchange, not static config.
	if sp := tp.Speaker("A"); sp == nil || sp.Stats().RIB == 0 {
		t.Fatal("A has no learned routes")
	}
	// The FN catalog gossips alongside routes (§2.3): A knows what B runs.
	if cat, ok := tp.Speaker("A").NeighborCatalog(1); !ok || len(cat) == 0 {
		t.Error("A never learned B's FN catalog")
	}
}

func TestLinkKillReconvergesWithBoundedBlackhole(t *testing.T) {
	// Carrier-loss fault: B and D see PortDown at 100ms, withdraws flood,
	// and A swings to the C path. The blackhole is bounded by withdraw +
	// alternative-advertisement propagation (~11ms on these link delays),
	// not by any refresh or hold timer.
	tp, arrivals := runDiamond(t, diamondTopo("linkdown B D at 100ms"))
	if len(arrivals) < 40 {
		t.Fatalf("delivered only %d probes", len(arrivals))
	}
	gap, resumed := blackhole(arrivals, 100*time.Millisecond)
	if resumed == 0 {
		t.Fatal("service never resumed after the fault")
	}
	t.Logf("blackhole: gap=%v resumed=%v", gap, resumed)
	// At least one probe died in the hole; service back well before the
	// hold timer (30ms) could have been the mechanism.
	if gap <= 5*time.Millisecond {
		t.Errorf("no blackhole observed (gap %v); fault had no effect", gap)
	}
	if resumed > 125*time.Millisecond {
		t.Errorf("reconvergence took until %v; want triggered-withdraw speed, not hold-timer speed", resumed)
	}
	// Journey tracing attributes the blackhole: some probe died either on
	// the dead link ("link-down") or at A with no route.
	var faultDrops int
	for _, j := range tp.Journeys().Journeys() {
		if sp := j.DroppedAt(); sp != nil && sp.Start >= int64(100*time.Millisecond) {
			faultDrops++
		}
	}
	if faultDrops == 0 {
		t.Error("journeys recorded no drops during the blackhole")
	}
}

func TestSilentLinkDeathRecoversViaHoldTimer(t *testing.T) {
	// Silent fault: the link eats packets with no carrier loss. No
	// withdraws fire; B must notice D's silence via the hold timer
	// (30ms), then the withdraw/alternative machinery kicks in. The
	// blackhole is necessarily longer than the carrier-loss case.
	tp, arrivals := runDiamond(t, diamondTopo("linkdown B D at 100ms silent"))
	gap, resumed := blackhole(arrivals, 100*time.Millisecond)
	if resumed == 0 {
		t.Fatal("service never resumed after the silent fault")
	}
	t.Logf("silent blackhole: gap=%v resumed=%v", gap, resumed)
	if resumed < 125*time.Millisecond {
		t.Errorf("resumed at %v, before the hold timer could possibly have expired", resumed)
	}
	if resumed > 170*time.Millisecond {
		t.Errorf("hold-timer recovery took until %v; want within hold+refresh+propagation", resumed)
	}
	if st := tp.Speaker("B").Stats(); st.RoutesExpired == 0 {
		t.Error("B never soft-state-expired the dead route")
	}
}

func TestLinkUpRestoresDirectPath(t *testing.T) {
	// Kill B–D, then revive it: A must end up routing again (either leg),
	// and the revived adjacency re-learns routes without a refresh wait.
	src := diamondTopo("linkdown B D at 100ms\nlinkup B D at 150ms")
	tp, arrivals := runDiamond(t, src)
	if len(arrivals) < 45 {
		t.Fatalf("delivered only %d probes", len(arrivals))
	}
	// After linkup, B relearns the prefix from D (PortUp triggers a full
	// advertisement exchange).
	if st := tp.Speaker("B").Stats(); st.RIB == 0 {
		t.Error("B has no routes after the link came back")
	}
}

func TestSpeakersDirectiveErrors(t *testing.T) {
	cases := []string{
		"speakers\nspeakers",
		"speakers refresh=0s",
		"speakers refresh=abc",
		"speakers maxmetric=0",
		"speakers bogus",
		"speakers bogus=1",
		"router A\nrouter B\nlinkdown A B at 1ms", // no link declared
		"linkup A B",                              // unknown routers
		"router A\nrouter B\nlink A:0 B:0\nlinkup A B at 1ms silent",
		"router A\nrouter B\nlink A:0 B:0\nlinkdown A at 1ms",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted:\n%s", src)
		}
	}
}
