package topo

import (
	"fmt"
	"strings"
	"testing"

	"dip/internal/inband"
	"dip/internal/journey"
)

// chainINTTopo is a quiescent 3-router chain with static routes: ipv4
// probes H1→H2 plus one NDN fetch, all telemetry-stamped.
func chainINTTopo(sends int) string {
	var b strings.Builder
	b.WriteString(`
int=1 intslots=8
router A
router B
router C
host H1
host H2
link H1 A:0 1ms
link A:1 B:0 1ms
link B:1 C:0 1ms
link C:1 H2 1ms
route32 A 10.0.2.0/24 1
route32 B 10.0.2.0/24 1
route32 C 10.0.2.0/24 1
name A aa000001/32 1
name B aa000001/32 1
name C aa000001/32 1
produce H2 aa000001 "the-data"
interest H1 aa000001 at 5ms
`)
	for i := 0; i < sends; i++ {
		fmt.Fprintf(&b, "send H1 ipv4 10.0.1.1 10.0.2.9 \"p%d\" at %dms\n", i, 10+5*i)
	}
	return b.String()
}

// TestINTDigestMatchesTopologyPath is the quiescent-path oracle: every
// delivered packet's recorded hop sequence must equal the topology path its
// FIBs dictate — zero false path changes, zero loops, zero cross-check
// mismatches — and the per-link latency aggregation must reproduce the
// configured link delays exactly (virtual time has no noise).
func TestINTDigestMatchesTopologyPath(t *testing.T) {
	const sends = 9
	tp, err := Parse(strings.NewReader(chainINTTopo(sends)))
	if err != nil {
		t.Fatal(err)
	}
	deliveries := tp.Run()
	c := tp.INT()
	if c == nil {
		t.Fatal("int=1 directive did not enable telemetry")
	}
	st := c.Stats()

	// Every delivery plus the producer-consumed interest left a postcard.
	if want := len(deliveries) + 1; st.Postcards != int64(want) {
		t.Errorf("postcards=%d, want %d (deliveries %d + consumed interest)",
			st.Postcards, want, len(deliveries))
	}
	if st.PathChanges != 0 || st.Loops != 0 || st.ExpectedMismatch != 0 {
		t.Errorf("quiescent run: changes=%d loops=%d mismatches=%d, want all 0",
			st.PathChanges, st.Loops, st.ExpectedMismatch)
	}
	if st.Overflows != 0 || st.DecodeErrors != 0 {
		t.Errorf("overflows=%d decode errors=%d", st.Overflows, st.DecodeErrors)
	}
	// Three flows: the ipv4 probes, the interest, the data reply.
	if st.Flows != 3 {
		t.Errorf("flows=%d, want 3", st.Flows)
	}

	// Hop IDs are sorted-name order: A=1, B=2, C=3. Forward traffic
	// (probes + interest) crosses A→B and B→C; the data reply crosses
	// C→B and B→A. Each transit is exactly the configured 1ms.
	wantLinks := map[[2]uint32]int64{
		{1, 2}: sends + 1, {2, 3}: sends + 1,
		{3, 2}: 1, {2, 1}: 1,
	}
	if len(st.Links) != len(wantLinks) {
		t.Fatalf("links=%d, want %d: %+v", len(st.Links), len(wantLinks), st.Links)
	}
	for _, l := range st.Links {
		want, ok := wantLinks[[2]uint32{l.From, l.To}]
		if !ok || l.Count != want {
			t.Errorf("link %s->%s count=%d, want %d", l.FromName, l.ToName, l.Count, want)
		}
		if l.SumNs != l.Count*1_000_000 {
			t.Errorf("link %s->%s latency sum %dns over %d transits, want exactly 1ms each",
				l.FromName, l.ToName, l.SumNs, l.Count)
		}
	}
	// Every router stamped every packet that passed it.
	perHop := int64(sends + 2) // probes + interest + data
	for _, h := range st.Hops {
		if h.Count != perHop {
			t.Errorf("hop %s count=%d, want %d", h.Name, h.Count, perHop)
		}
	}
	// The payload consumer never sees fabric telemetry: stripINT zeroes
	// the region, and payloads arrive intact regardless.
	for _, d := range deliveries {
		if d.Host == "H1" && d.Payload != "the-data" {
			t.Errorf("data payload %q corrupted by telemetry strip", d.Payload)
		}
	}
}

// TestINTFlagsDiamondReconvergence replays PR 9's linkdown scenario with
// telemetry on: the probes' postcards must expose exactly one path change —
// old path A,B,D; new path A,C,D — giving the reconvergence event
// packet-level attribution.
func TestINTFlagsDiamondReconvergence(t *testing.T) {
	src := "int=1 intslots=8\n" + diamondTopo("linkdown B D at 100ms")
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	tp.Run()
	st := tp.INT().Stats()
	if st.Loops != 0 {
		t.Errorf("loops=%d on a loop-free topology", st.Loops)
	}
	if st.PathChanges != 1 || len(st.Changes) != 1 {
		t.Fatalf("changes=%d ring=%d, want exactly the reconvergence flip", st.PathChanges, len(st.Changes))
	}
	ch := st.Changes[0]
	// Sorted-name hop IDs: A=1 B=2 C=3 D=4.
	wantOld, wantNew := []uint32{1, 2, 4}, []uint32{1, 3, 4}
	if len(ch.OldHops) != 3 || len(ch.NewHops) != 3 {
		t.Fatalf("old=%v new=%v", ch.OldHops, ch.NewHops)
	}
	for i := range wantOld {
		if ch.OldHops[i] != wantOld[i] || ch.NewHops[i] != wantNew[i] {
			t.Fatalf("old=%v new=%v, want %v -> %v", ch.OldHops, ch.NewHops, wantOld, wantNew)
		}
	}
	// The change is observed after the fault, within the reconvergence
	// window PR 9 bounds (service resumed by 125ms; +3ms flight time).
	if ms := ch.At / 1_000_000; ms <= 100 || ms > 128 {
		t.Errorf("change observed at %dms, want inside the (100,128]ms reconvergence window", ms)
	}
}

// TestINTQuiescentDiamondReportsNoChanges is the false-positive guard: the
// same diamond without a fault must report zero path changes even though
// routes are learned dynamically while probes flow.
func TestINTQuiescentDiamondReportsNoChanges(t *testing.T) {
	src := "int=1\n" + diamondTopo("# no fault")
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	tp.Run()
	st := tp.INT().Stats()
	if st.PathChanges != 0 || st.Loops != 0 {
		t.Errorf("quiescent diamond: changes=%d loops=%d, want 0/0", st.PathChanges, st.Loops)
	}
	if st.Postcards == 0 {
		t.Error("no postcards collected")
	}
}

// TestINTJourneyCrossCorrelation runs telemetry and journey tracing
// together: each stamped packet's hop records must name the same routers in
// the same order as its journey's router spans, hop timestamp deltas must
// equal the span-to-span gaps, and the journey decomposition must conserve
// (FN + queue + wire + PIT-wait == total).
func TestINTJourneyCrossCorrelation(t *testing.T) {
	tp, err := Parse(strings.NewReader(chainINTTopo(4)))
	if err != nil {
		t.Fatal(err)
	}
	jc := tp.EnableJourneys(1)
	var postcards []inband.Postcard
	tp.EnableINT(0, 0).SetTap(func(pc inband.Postcard) { postcards = append(postcards, pc) })
	tp.Run()

	checked := 0
	for _, pc := range postcards {
		if pc.Proto != "ipv4" {
			continue
		}
		if pc.Trace == 0 {
			t.Fatal("stamped packet has no trace ID; fingerprinting would be hop-variant")
		}
		js := jc.JourneysOf(journey.TraceID(pc.Trace))
		if len(js) != 1 || !js[0].Complete() {
			t.Fatalf("trace %016x: %d journeys (complete=%v), want exactly one complete",
				pc.Trace, len(js), len(js) == 1 && js[0].Complete())
		}
		j := js[0]
		checked++

		// The INT hop sequence and the journey's router spans must name the
		// same routers in the same order.
		var spanRouters []string
		var spanStarts []int64
		for i := range j.Spans {
			if j.Spans[i].Kind == journey.SpanRouter {
				spanRouters = append(spanRouters, j.Spans[i].Node)
				spanStarts = append(spanStarts, j.Spans[i].Start)
			}
		}
		if len(spanRouters) != len(pc.Hops) {
			t.Fatalf("trace %016x: %d INT hops vs %d router spans", pc.Trace, len(pc.Hops), len(spanRouters))
		}
		for i, r := range pc.Hops {
			if name := tp.intNames[r.HopID]; name != spanRouters[i] {
				t.Errorf("trace %016x hop %d: INT says %s, journey says %s", pc.Trace, i, name, spanRouters[i])
			}
			// The hop's µs timestamp is the router span's start instant.
			if int64(r.TimestampUs)*1000 != spanStarts[i] {
				t.Errorf("trace %016x hop %d: INT ts %dµs vs span start %dns",
					pc.Trace, i, r.TimestampUs, spanStarts[i])
			}
		}

		// Conservation: the decomposition components sum to the total, and
		// on this quiescent chain all of it is wire time (4 links × 1ms).
		d := j.Decompose()
		if d.TotalNs != d.FNNs+d.QueueNs+d.WireNs+d.PITWaitNs {
			t.Errorf("trace %016x: decomposition does not conserve: total=%d fn=%d queue=%d wire=%d pit=%d",
				pc.Trace, d.TotalNs, d.FNNs, d.QueueNs, d.WireNs, d.PITWaitNs)
		}
		if d.WireNs != 4_000_000 || d.QueueNs != 0 {
			t.Errorf("trace %016x: wire=%d queue=%d, want 4ms/0", pc.Trace, d.WireNs, d.QueueNs)
		}
		// And the INT view agrees end to end: first→last stamp plus the two
		// edge links (H1→A, C→H2) spans the same 4ms the journey measured.
		intSpanNs := int64(pc.Hops[len(pc.Hops)-1].TimestampUs-pc.Hops[0].TimestampUs) * 1000
		if intSpanNs+2_000_000 != d.TotalNs {
			t.Errorf("trace %016x: INT fabric span %dns + 2ms edges != journey total %dns",
				pc.Trace, intSpanNs, d.TotalNs)
		}
		if got, want := j.Path(), "H1>A>B>C>H2"; got != want {
			t.Errorf("journey path %q, want %q", got, want)
		}
	}
	if checked != 4 {
		t.Fatalf("cross-checked %d ipv4 postcards, want 4", checked)
	}
}

func TestINTDirectiveErrors(t *testing.T) {
	cases := []string{
		"int=0",
		"int=-3",
		"int=abc",
		"int=1 intslots=0",
		"intslots=128",
		"int=1 bogus=2",
		"int=1 intslots",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestINTSamplingPeriod checks int=3 stamps every third injected packet.
func TestINTSamplingPeriod(t *testing.T) {
	var b strings.Builder
	b.WriteString(`
int=3
router A
host H1
host H2
link H1 A:0 1ms
link A:1 H2 1ms
route32 A 10.0.2.0/24 1
`)
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, "send H1 ipv4 10.0.1.1 10.0.2.9 \"p%d\" at %dms\n", i, 10+5*i)
	}
	tp, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	deliveries := tp.Run()
	if len(deliveries) != 9 {
		t.Fatalf("delivered %d/9", len(deliveries))
	}
	if st := tp.INT().Stats(); st.Postcards != 3 {
		t.Errorf("postcards=%d with int=3 over 9 sends, want 3", st.Postcards)
	}
}
