// Route-exchange integration: the "speakers" directive turns every router
// in the topology into a route-exchange participant (internal/bootstrap),
// and "linkdown"/"linkup" inject the faults the protocol reconverges
// around.
//
//	speakers [refresh=50ms] [hold=150ms] [horizon=1s] [maxmetric=16]
//	linkdown R1 R2 at 10ms [silent]   # kill the R1–R2 link (both directions)
//	linkup   R1 R2 at 30ms            # revive it
//
// With speakers enabled, each router's statically configured routes become
// its originated set (OriginateFromFIBs) and everything else is learned in
// band: advertisements ride DIP packets carrying an F_ctl FN on the
// control class, delivered through the router's own pipeline to the
// speaker. Refresh cycles are scheduled from t=0 every refresh= up to
// horizon= (virtual time), bounding the event queue so Run terminates.
//
// linkdown without "silent" models carrier loss: both routers see PortDown
// and reconverge via triggered withdraws. With "silent" the link just eats
// packets — no signal, no withdraws — and recovery must come from
// soft-state expiry (hold=), the slow path.
package topo

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/core"
	"dip/internal/netsim"
	"dip/internal/profiles"
)

// speakOptions is the parsed "speakers" directive.
type speakOptions struct {
	refresh   time.Duration
	hold      time.Duration
	horizon   time.Duration
	maxMetric int
}

// routerLink is one router↔router adjacency: who is on each side, the port
// each side uses, and the two directed pipes (ab carries a→b traffic).
type routerLink struct {
	aName, bName string
	aPort, bPort int
	ab, ba       *netsim.Endpoint
}

func (t *Topology) addSpeakers(args []string) error {
	if t.speak != nil {
		return fmt.Errorf("speakers redeclared")
	}
	opt := &speakOptions{refresh: 50 * time.Millisecond, maxMetric: 16}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("unknown speakers option %q", a)
		}
		switch k {
		case "refresh", "hold", "horizon":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return fmt.Errorf("%s wants a positive duration, got %q", k, v)
			}
			switch k {
			case "refresh":
				opt.refresh = d
			case "hold":
				opt.hold = d
			case "horizon":
				opt.horizon = d
			}
		case "maxmetric":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("maxmetric wants a positive count, got %q", v)
			}
			opt.maxMetric = n
		default:
			return fmt.Errorf("unknown speakers option %q", a)
		}
	}
	if opt.hold == 0 {
		opt.hold = 3 * opt.refresh
	}
	if opt.horizon == 0 {
		opt.horizon = 20 * opt.refresh
	}
	t.speak = opt
	return nil
}

// findRouterLink resolves the link between two named routers (either
// order). Requires the link directive to appear earlier in the file.
func (t *Topology) findRouterLink(a, b string) (*routerLink, error) {
	for _, l := range t.rlinks {
		if (l.aName == a && l.bName == b) || (l.aName == b && l.bName == a) {
			return l, nil
		}
	}
	return nil, fmt.Errorf("no link between routers %s and %s (declare link first)", a, b)
}

// addLinkEvent schedules a linkdown or linkup.
func (t *Topology) addLinkEvent(up bool, args []string) error {
	args, at, err := t.scheduleAt(args)
	if err != nil {
		return err
	}
	silent := false
	if n := len(args); n > 0 && args[n-1] == "silent" {
		if up {
			return fmt.Errorf("linkup has no silent mode")
		}
		silent = true
		args = args[:n-1]
	}
	if len(args) != 2 {
		return fmt.Errorf("link event needs: routerA routerB [at D] [silent]")
	}
	l, err := t.findRouterLink(args[0], args[1])
	if err != nil {
		return err
	}
	t.events = append(t.events, event{at: at, fn: func() {
		l.ab.Dropped = !up
		l.ba.Dropped = !up
		verb := "down"
		if up {
			verb = "up"
		}
		if t.Log != nil {
			t.Log("[%v] link %s–%s %s (silent=%v)", t.sim.Now(), l.aName, l.bName, verb, silent)
		}
		if silent || t.speakers == nil {
			return
		}
		sa, sb := t.speakers[l.aName], t.speakers[l.bName]
		if up {
			sa.PortUp(l.aPort)
			sb.PortUp(l.bPort)
		} else {
			sa.PortDown(l.aPort)
			sb.PortDown(l.bPort)
		}
	}})
	return nil
}

// buildSpeakers instantiates one Speaker per router, wires adjacencies
// over the existing link pipes, seeds each from its static FIBs, and
// schedules the refresh cycle. Runs once, at scenario start.
func (t *Topology) buildSpeakers() {
	if t.speak == nil || t.speakers != nil {
		return
	}
	t.speakers = make(map[string]*bootstrap.Speaker, len(t.routers))
	for name, rn := range t.routers {
		sp := bootstrap.NewSpeaker(bootstrap.SpeakerConfig{
			Name:      name,
			FIB32:     rn.cfg.FIB32,
			FIB128:    rn.cfg.FIB128,
			NameFIB:   rn.cfg.NameFIB,
			Catalog:   bootstrap.CatalogOf(rn.r.Registry()),
			Now:       t.sim.Now,
			HoldFor:   t.speak.hold,
			MaxMetric: t.speak.maxMetric,
			Log:       t.Log,
		})
		sp.OriginateFromFIBs()
		t.speakers[name] = sp
		rn.r.SetLocalDelivery(func(pkt []byte, inPort int) {
			t.deliverControl(sp, pkt, inPort)
		})
	}
	for _, l := range t.rlinks {
		l := l
		t.speakers[l.aName].AddNeighbor(l.aPort, func(msg []byte) { t.sendControl(l.ab, msg) })
		t.speakers[l.bName].AddNeighbor(l.bPort, func(msg []byte) { t.sendControl(l.ba, msg) })
	}
	for at := time.Duration(0); at <= t.speak.horizon; at += t.speak.refresh {
		t.events = append(t.events, event{at: at, fn: func() {
			for _, sp := range t.speakers {
				sp.Refresh()
			}
		}})
	}
}

// sendControl wraps an encoded route-exchange message in its DIP control
// packet (F_ctl FN, NHRouteExchange) and puts it on the directed pipe.
func (t *Topology) sendControl(pipe *netsim.Endpoint, msg []byte) {
	pkt, err := buildPacket(profiles.RouteExchange(), msg)
	if err != nil {
		return
	}
	pipe.Send(pkt)
}

// deliverControl is the router's local-delivery sink with speakers on:
// route-exchange payloads go to the speaker; anything else a router was
// asked to deliver locally is absorbed (routers are not hosts).
func (t *Topology) deliverControl(sp *bootstrap.Speaker, pkt []byte, inPort int) {
	v, err := core.ParseView(pkt)
	if err != nil || v.NextHeader() != profiles.NHRouteExchange {
		return
	}
	sp.Handle(v.Payload(), inPort)
}

// Speaker returns the named router's route-exchange agent (nil without the
// speakers directive or before the scenario started).
func (t *Topology) Speaker(router string) *bootstrap.Speaker {
	if t.speakers == nil {
		return nil
	}
	return t.speakers[router]
}
