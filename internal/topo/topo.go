// Package topo parses and runs topology/scenario files: a line-based DSL
// describing DIP routers, hosts, links, routes, producers, and timed
// traffic, executed on the virtual-time simulator. cmd/diptopo is its CLI.
//
// Syntax (one directive per line, '#' comments):
//
//	router R1 [cache=64] [csshards=N] [cscold=SLOTS] [csslot=BYTES] [secret=<32 hex>] [hopindex=N] [requirepass] [pitperport=N] [pitshards=N]
//	host   H1
//	link   R1:0 H1 [delay]          # bidirectional; hosts have one port
//	link   R1:1 R2:0 2ms
//	link   R1:1 R2:0 2ms loss=0.1 seed=42    # seeded fault injection:
//	                                # loss= dup= corrupt= reorder= (probabilities),
//	                                # jitter=2ms, down=10ms-20ms (window), seed=N
//	route32 R1 10.0.0.0/8 1         # IPv4-style route to a port, or "local"
//	route128 R1 20/8 1              # hex prefix
//	name   R1 aa000000/8 1          # content-name route
//	produce H2 aa000001 "payload"   # H2 answers interests for the name
//	interest H1 aa000001 [at 5ms]   # scenario traffic
//	send   H1 ipv4 10.0.0.1 10.0.0.9 "payload" [at 1ms]
//	speakers [refresh=50ms] [hold=150ms] [horizon=1s] [maxmetric=16]
//	                                # in-fabric route exchange on all routers
//	linkdown R1 R2 at 10ms [silent] # kill a router-router link (silent: no
//	                                # carrier loss; only hold-timer recovery)
//	linkup   R1 R2 at 30ms          # revive it
//	int=1 intslots=8                # in-band telemetry: every int-th injected
//	                                # packet carries an F_tel region with
//	                                # intslots hop records; delivering hosts
//	                                # strip it into the INT() collector
package topo

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/extops"
	"dip/internal/fib"
	"dip/internal/inband"
	"dip/internal/journey"
	"dip/internal/netsim"
	"dip/internal/ops"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/router"
	"dip/internal/telemetry"
)

// Delivery records a packet arriving at a host.
type Delivery struct {
	Host    string
	At      time.Duration
	Payload string
	Profile string // "interest", "data", "other"
}

// Topology is a parsed, runnable network.
type Topology struct {
	sim        *netsim.Simulator
	routers    map[string]*routerNode
	hosts      map[string]*hostNode
	events     []event
	faulty     []faultyLink
	links      []topoLink
	rlinks     []*routerLink
	speak      *speakOptions
	speakers   map[string]*bootstrap.Speaker
	journeys   *journey.Collector
	Deliveries []Delivery
	// In-band telemetry state (int=/intslots= or EnableINT).
	intEvery int
	intSlots int
	intSeq   int64
	intBuilt bool
	intc     *inband.Collector
	intIDs   map[string]uint32
	intNames map[uint32]string
	// Log receives a line per notable event; nil discards.
	Log func(format string, args ...any)
}

type faultyLink struct {
	label string
	im    *netsim.Impairment
}

type topoLink struct {
	label string
	pipe  *netsim.Endpoint
}

type routerNode struct {
	name    string
	cfg     ops.Config
	r       *router.Router
	metrics *telemetry.Metrics
	ports   int
	// tiered is the two-tier content store when the router was declared
	// with cscold=N: cold reads run synchronously (Readers 0) under the
	// virtual clock, and completions re-inject via a Schedule(0) event.
	tiered *cs.Tiered[uint32]
	// in is the batched ingress when the router was declared with batch=N:
	// links Submit into it and schedule a Pump, so queue service runs
	// burst-shaped but still in deterministic virtual-time order.
	in *router.Ingress
	// pipes are the router's outgoing link endpoints; their in-flight sum
	// is F_tel's queue-depth source on zero-bandwidth links.
	pipes []*netsim.Endpoint
	// peers maps each port to what hangs off it, for FIB-walk path
	// prediction.
	peers map[int]intPeer
}

type intPeer struct {
	name string
	host bool
}

func (rn *routerNode) notePeer(port int, name string, host bool) {
	if rn.peers == nil {
		rn.peers = map[int]intPeer{}
	}
	rn.peers[port] = intPeer{name: name, host: host}
}

type hostNode struct {
	name     string
	topo     *Topology
	port     router.Port // toward the network (set by link)
	produces map[uint32]string
}

type event struct {
	at time.Duration
	fn func()
}

// Parse reads a topology file.
func Parse(r io.Reader) (*Topology, error) {
	t := &Topology{
		sim:     netsim.New(),
		routers: map[string]*routerNode{},
		hosts:   map[string]*hostNode{},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := t.directive(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) directive(line string) error {
	fields := tokenize(line)
	switch fields[0] {
	case "router":
		return t.addRouter(fields[1:])
	case "host":
		return t.addHost(fields[1:])
	case "link":
		return t.addLink(fields[1:])
	case "route32", "route128", "name":
		return t.addRoute(fields[0], fields[1:])
	case "produce":
		return t.addProducer(fields[1:])
	case "interest":
		return t.addInterest(fields[1:])
	case "send":
		return t.addSend(fields[1:])
	case "speakers":
		return t.addSpeakers(fields[1:])
	case "linkdown":
		return t.addLinkEvent(false, fields[1:])
	case "linkup":
		return t.addLinkEvent(true, fields[1:])
	default:
		if k, _, ok := strings.Cut(fields[0], "="); ok && (k == "int" || k == "intslots") {
			return t.addINT(fields)
		}
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// addINT parses the `int=N [intslots=M]` telemetry directive.
func (t *Topology) addINT(args []string) error {
	for _, opt := range args {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return fmt.Errorf("int options want key=value, got %q", opt)
		}
		switch k {
		case "int":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("int= wants a positive sampling period, got %q", v)
			}
			t.intEvery = n
		case "intslots":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 127 {
				return fmt.Errorf("intslots= wants 1..127 slots, got %q", v)
			}
			t.intSlots = n
		default:
			return fmt.Errorf("unknown int option %q", opt)
		}
	}
	if t.intEvery == 0 {
		t.intEvery = 1
	}
	if t.intSlots == 0 {
		t.intSlots = 8
	}
	return nil
}

// tokenize splits on spaces but keeps quoted strings whole (without quotes).
func tokenize(line string) []string {
	var out []string
	for len(line) > 0 {
		line = strings.TrimLeft(line, " \t")
		if line == "" {
			break
		}
		if line[0] == '"' {
			end := strings.IndexByte(line[1:], '"')
			if end < 0 {
				out = append(out, line[1:])
				return out
			}
			out = append(out, line[1:1+end])
			line = line[2+end:]
			continue
		}
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			out = append(out, line)
			break
		}
		out = append(out, line[:sp])
		line = line[sp+1:]
	}
	return out
}

func (t *Topology) addRouter(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("router needs a name")
	}
	name := args[0]
	if _, dup := t.routers[name]; dup {
		return fmt.Errorf("router %s redefined", name)
	}
	cfg := ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
	}
	var cacheCap, csShards, csCold, csSlot, pitPerPort, pitShards, batch, queue int
	for _, opt := range args[1:] {
		k, v, _ := strings.Cut(opt, "=")
		switch k {
		case "batch":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("batch wants a positive burst size, got %q", v)
			}
			batch = n
		case "queue":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("queue wants a positive depth, got %q", v)
			}
			queue = n
		case "cache":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("cache: %v", err)
			}
			cacheCap = n
		case "csshards":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("csshards wants a positive count, got %q", v)
			}
			csShards = n
		case "cscold":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("cscold wants a positive slot count, got %q", v)
			}
			csCold = n
		case "csslot":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("csslot wants a positive byte size, got %q", v)
			}
			csSlot = n
		case "secret":
			secret, err := hex.DecodeString(v)
			if err != nil || len(secret) != 16 {
				return fmt.Errorf("secret must be 32 hex chars")
			}
			sv, err := drkey.NewSecretValue(name, secret)
			if err != nil {
				return err
			}
			cfg.Secret = sv
		case "hopindex":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("hopindex: %v", err)
			}
			cfg.HopIndex = uint8(n)
		case "requirepass":
			cfg.RequirePass = true
		case "pitperport":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("pitperport wants a positive count, got %q", v)
			}
			pitPerPort = n
		case "pitshards":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("pitshards wants a positive count, got %q", v)
			}
			pitShards = n
		default:
			return fmt.Errorf("unknown router option %q", opt)
		}
	}
	var popts []pit.Option[uint32]
	if pitPerPort > 0 {
		popts = append(popts, pit.WithPerPortCap[uint32](pitPerPort))
	}
	if pitShards > 0 {
		popts = append(popts, pit.WithShards[uint32](pitShards))
	}
	cfg.PIT = pit.New[uint32](popts...)
	if csCold > 0 && cacheCap <= 0 {
		return fmt.Errorf("cscold= needs a hot tier; add cache=N")
	}
	if csSlot > 0 && csCold == 0 {
		return fmt.Errorf("csslot= only applies with cscold=N")
	}
	if cacheCap > 0 {
		if csShards > 1 {
			cfg.ContentStore = cs.NewSharded[uint32](cacheCap, csShards)
		} else {
			cfg.ContentStore = cs.New[uint32](cacheCap)
		}
	}
	var tiered *cs.Tiered[uint32]
	if csCold > 0 {
		// Readers 0 keeps the cold tier synchronous: the pread happens
		// inside the interest's own sim event and the completion re-injects
		// via Schedule(0), so runs stay single-goroutine deterministic.
		var err error
		tiered, err = cs.NewTiered(cfg.ContentStore, cs.ColdConfig{
			Slots:    csCold,
			SlotSize: csSlot,
			Now:      func() int64 { return int64(t.sim.Now()) },
		})
		if err != nil {
			return fmt.Errorf("cscold: %v", err)
		}
		cfg.TieredStore = tiered
	}
	if queue > 0 && batch == 0 {
		return fmt.Errorf("queue= only applies to batched routers; add batch=N")
	}
	rn := &routerNode{name: name, cfg: cfg, metrics: &telemetry.Metrics{}, tiered: tiered}
	rn.r = router.New(ops.NewRouterRegistry(cfg), router.Config{
		Name:    name,
		Metrics: rn.metrics,
	})
	if batch > 0 {
		if queue == 0 {
			queue = 256
		}
		// Pump mode keeps the simulation single-goroutine and deterministic;
		// the burst discipline (collect up to batch, run to completion) is
		// exactly what the worker forwarders execute.
		rn.in = rn.r.ServeGuarded(router.ServeConfig{
			Workers:   0,
			Batch:     batch,
			HighDepth: queue,
			LowDepth:  queue,
			Clock:     t.sim.Now,
		})
	}
	if tiered != nil {
		tiered.SetReinject(func(cname uint32, data []byte, start, end int64) {
			reply, err := buildPacket(profiles.NDNData(cname), data)
			if err != nil {
				return
			}
			// Schedule(0) breaks re-entrancy: the synchronous read completes
			// inside the interest's HandlePacket, so the data packet must
			// enter the router as its own event, after the interest absorbs.
			t.sim.Schedule(0, func() {
				if t.journeys != nil {
					t.journeys.AddSpan(journey.Span{
						Trace:   journey.TraceOf(reply),
						Kind:    journey.SpanCSCold,
						Node:    name,
						Start:   start,
						End:     end,
						Name:    cname,
						HasName: true,
						Proto:   "ndn-data",
					})
				}
				if t.Log != nil {
					t.Log("[%v] %s cold read %#08x re-injected", t.sim.Now(), name, cname)
				}
				if rn.in != nil {
					if rn.in.Submit(reply, 0) {
						t.sim.Schedule(0, func() { rn.in.Pump() })
					}
					return
				}
				rn.r.HandlePacket(reply, 0)
			})
		})
	}
	t.routers[name] = rn
	return nil
}

func (t *Topology) addHost(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("host needs a name")
	}
	name := args[0]
	if _, dup := t.hosts[name]; dup {
		return fmt.Errorf("host %s redefined", name)
	}
	t.hosts[name] = &hostNode{name: name, topo: t, produces: map[uint32]string{}}
	return nil
}

// endpoint resolves "NAME[:port]".
func (t *Topology) endpoint(spec string) (name string, port int, isHost bool, err error) {
	name, portStr, has := strings.Cut(spec, ":")
	if _, ok := t.hosts[name]; ok {
		if has {
			return "", 0, false, fmt.Errorf("hosts have no port numbers: %q", spec)
		}
		return name, 0, true, nil
	}
	if _, ok := t.routers[name]; !ok {
		return "", 0, false, fmt.Errorf("unknown node %q", name)
	}
	if !has {
		return "", 0, false, fmt.Errorf("router endpoint needs a port: %q", spec)
	}
	port, err = strconv.Atoi(portStr)
	return name, port, false, err
}

// parseImpairments reads the link directive's key=value fault options into
// a pair of per-direction impairments (nil when none are given). Seeds are
// derived per direction so both fault sequences are independent yet fully
// determined by the one seed= value.
func parseImpairments(opts []string) (ab, ba *netsim.Impairment, err error) {
	var seed int64 = 1
	type setter func(im *netsim.Impairment)
	var setters []setter
	prob := func(k, v string, assign func(im *netsim.Impairment, p float64)) error {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("%s wants a probability in [0,1], got %q", k, v)
		}
		setters = append(setters, func(im *netsim.Impairment) { assign(im, p) })
		return nil
	}
	for _, opt := range opts {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, nil, fmt.Errorf("unknown link option %q", opt)
		}
		switch k {
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("seed: %v", err)
			}
			seed = s
		case "loss":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.DropProb = p }); err != nil {
				return nil, nil, err
			}
		case "dup":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.DupProb = p }); err != nil {
				return nil, nil, err
			}
		case "corrupt":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.CorruptProb = p }); err != nil {
				return nil, nil, err
			}
		case "reorder":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.ReorderProb = p }); err != nil {
				return nil, nil, err
			}
		case "jitter":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, nil, fmt.Errorf("jitter: %v", err)
			}
			setters = append(setters, func(im *netsim.Impairment) { im.Jitter = d })
		case "down":
			fromStr, toStr, ok := strings.Cut(v, "-")
			if !ok {
				return nil, nil, fmt.Errorf("down wants from-to durations, got %q", v)
			}
			from, err := time.ParseDuration(fromStr)
			if err != nil {
				return nil, nil, fmt.Errorf("down: %v", err)
			}
			to, err := time.ParseDuration(toStr)
			if err != nil {
				return nil, nil, fmt.Errorf("down: %v", err)
			}
			setters = append(setters, func(im *netsim.Impairment) { im.DownBetween(from, to) })
		default:
			return nil, nil, fmt.Errorf("unknown link option %q", opt)
		}
	}
	if len(setters) == 0 {
		return nil, nil, nil
	}
	ab, ba = netsim.NewImpairment(seed), netsim.NewImpairment(seed+1)
	for _, s := range setters {
		s(ab)
		s(ba)
	}
	return ab, ba, nil
}

func (t *Topology) addLink(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("link needs two endpoints")
	}
	delay := time.Millisecond
	opts := args[2:]
	if len(opts) > 0 && !strings.Contains(opts[0], "=") {
		d, err := time.ParseDuration(opts[0])
		if err != nil {
			return fmt.Errorf("delay: %v", err)
		}
		delay = d
		opts = opts[1:]
	}
	imAB, imBA, err := parseImpairments(opts)
	if err != nil {
		return err
	}
	aName, aPort, aHost, err := t.endpoint(args[0])
	if err != nil {
		return err
	}
	bName, bPort, bHost, err := t.endpoint(args[1])
	if err != nil {
		return err
	}
	recvOf := func(name string, isHost bool, port int) netsim.Receiver {
		if isHost {
			h := t.hosts[name]
			return netsim.ReceiverFunc(func(pkt []byte, _ int) { h.receive(pkt) })
		}
		rn := t.routers[name]
		if rn.in != nil {
			in, sim := rn.in, t.sim
			return netsim.ReceiverFunc(func(pkt []byte, p int) {
				if in.Submit(pkt, p) {
					sim.Schedule(0, func() { in.Pump() })
				}
			})
		}
		r := rn.r
		return netsim.ReceiverFunc(func(pkt []byte, p int) { r.HandlePacket(pkt, p) })
	}
	// a → b direction.
	var abOpts, baOpts []netsim.LinkOption
	if imAB != nil {
		abOpts = append(abOpts, netsim.WithImpairment(imAB))
		baOpts = append(baOpts, netsim.WithImpairment(imBA))
		t.faulty = append(t.faulty,
			faultyLink{label: args[0] + "->" + args[1], im: imAB},
			faultyLink{label: args[1] + "->" + args[0], im: imBA})
	}
	abPipe := t.sim.Pipe(recvOf(bName, bHost, bPort), bPort, delay, 0, abOpts...)
	baPipe := t.sim.Pipe(recvOf(aName, aHost, aPort), aPort, delay, 0, baOpts...)
	t.links = append(t.links,
		topoLink{label: aName + "->" + bName, pipe: abPipe},
		topoLink{label: bName + "->" + aName, pipe: baPipe})
	if !aHost && !bHost {
		// Router↔router adjacency: route-exchange speakers peer over it and
		// linkdown/linkup events target it by router-name pair.
		t.rlinks = append(t.rlinks, &routerLink{
			aName: aName, bName: bName, aPort: aPort, bPort: bPort,
			ab: abPipe, ba: baPipe,
		})
	}
	attach := func(name string, isHost bool, port int, pipe *netsim.Endpoint) error {
		if isHost {
			t.hosts[name].port = pipe
			return nil
		}
		rn := t.routers[name]
		rn.pipes = append(rn.pipes, pipe)
		for rn.ports <= port {
			// Pad unassigned ports with black holes so indices line up.
			if rn.ports == port {
				rn.r.AttachPort(pipe)
			} else {
				rn.r.AttachPort(router.PortFunc(func([]byte) {}))
			}
			rn.ports++
		}
		return nil
	}
	if err := attach(aName, aHost, aPort, abPipe); err != nil {
		return err
	}
	if err := attach(bName, bHost, bPort, baPipe); err != nil {
		return err
	}
	if !aHost {
		t.routers[aName].notePeer(aPort, bName, bHost)
	}
	if !bHost {
		t.routers[bName].notePeer(bPort, aName, aHost)
	}
	return nil
}

func (t *Topology) addRoute(kind string, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("%s needs: router prefix/len port|local", kind)
	}
	rn, ok := t.routers[args[0]]
	if !ok {
		return fmt.Errorf("unknown router %q", args[0])
	}
	prefixStr, lenStr, ok := strings.Cut(args[1], "/")
	if !ok {
		return fmt.Errorf("prefix needs /len")
	}
	plen, err := strconv.Atoi(lenStr)
	if err != nil {
		return err
	}
	nh := fib.Local
	if args[2] != "local" {
		port, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("port: %v", err)
		}
		nh = fib.NextHop{Port: port}
	}
	switch kind {
	case "route32":
		key, err := parse32(prefixStr)
		if err != nil {
			return err
		}
		return rn.cfg.FIB32.AddUint32(key, plen, nh)
	case "name":
		key, err := parseHex32(prefixStr)
		if err != nil {
			return err
		}
		return rn.cfg.NameFIB.AddUint32(key, plen, nh)
	default: // route128
		key, err := hex.DecodeString(prefixStr)
		if err != nil {
			return err
		}
		if len(key) > 16 {
			// Input-reachable: padding with 16-len(key) would panic on a
			// long prefix (fuzz-found class of bug).
			return fmt.Errorf("route128 prefix %d bytes, max 16", len(key))
		}
		key = append(key, make([]byte, 16-len(key))...)
		return rn.cfg.FIB128.Add(key, plen, nh)
	}
}

func (t *Topology) addProducer(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("produce needs: host name payload")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	name, err := parseHex32(args[1])
	if err != nil {
		return err
	}
	h.produces[name] = args[2]
	return nil
}

func (t *Topology) scheduleAt(args []string) (rest []string, at time.Duration, err error) {
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "at" {
			d, err := time.ParseDuration(args[i+1])
			if err != nil {
				return nil, 0, err
			}
			return append(append([]string{}, args[:i]...), args[i+2:]...), d, nil
		}
	}
	return args, 0, nil
}

func (t *Topology) addInterest(args []string) error {
	args, at, err := t.scheduleAt(args)
	if err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("interest needs: host name [at D]")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	name, err := parseHex32(args[1])
	if err != nil {
		return err
	}
	t.events = append(t.events, event{at: at, fn: func() {
		b, err := buildPacket(t.intWrap(profiles.NDNInterest(name)), nil)
		if err != nil {
			return
		}
		h.send(b)
	}})
	return nil
}

func (t *Topology) addSend(args []string) error {
	args, at, err := t.scheduleAt(args)
	if err != nil {
		return err
	}
	if len(args) != 5 || args[1] != "ipv4" {
		return fmt.Errorf("send needs: host ipv4 src dst payload [at D]")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	src, err := parseDotted(args[2])
	if err != nil {
		return err
	}
	dst, err := parseDotted(args[3])
	if err != nil {
		return err
	}
	payload := args[4]
	t.events = append(t.events, event{at: at, fn: func() {
		b, err := buildPacket(t.intWrap(profiles.IPv4(src, dst)), []byte(payload))
		if err != nil {
			return
		}
		h.send(b)
	}})
	return nil
}

// EnableJourneys turns on end-to-end journey tracing for the run: every
// every-th packet per router gets a span (1 traces everything), every link
// transit and host send/receive is observed, and all spans are stitched by
// the returned Collector. All span timestamps come from the simulator's
// virtual clock — the same time source RunSampled's series ticks on — so
// spans, samples, and deliveries are mutually comparable. Call after Parse,
// before Run.
func (t *Topology) EnableJourneys(every int) *journey.Collector {
	if t.journeys != nil {
		return t.journeys
	}
	c := journey.NewCollector(journey.Config{})
	now := func() int64 { return int64(t.sim.Now()) }
	for _, rn := range t.routers {
		rn.r.SetRecorder(journey.NewRouterTap(rn.name, c, rn.metrics, every, now))
	}
	for _, l := range t.links {
		l.pipe.SetObserver(journey.NewLinkTap(l.label, c))
	}
	t.journeys = c
	return c
}

// TierStats returns the named router's two-tier content-store snapshot,
// or ok=false when it has no cold tier (no cscold= option).
func (t *Topology) TierStats(router string) (cs.TierStats, bool) {
	rn, ok := t.routers[router]
	if !ok || rn.tiered == nil {
		return cs.TierStats{}, false
	}
	return rn.tiered.Stats(), true
}

// Close releases per-router resources (cold-tier arena files). Safe to
// call multiple times; runs must be finished first.
func (t *Topology) Close() {
	for _, rn := range t.routers {
		if rn.tiered != nil {
			rn.tiered.Close()
		}
	}
}

// Journeys returns the collector installed by EnableJourneys, or nil.
func (t *Topology) Journeys() *journey.Collector { return t.journeys }

// EnableINT turns on in-band telemetry programmatically, equivalent to the
// int=/intslots= directives: every int-th injected packet carries an F_tel
// region, routers stamp it, and delivering hosts strip it into the returned
// collector. every or slots of 0 keep the current (or default 1/8) values.
// Call after Parse, before Run.
func (t *Topology) EnableINT(every, slots int) *inband.Collector {
	if every > 0 {
		t.intEvery = every
	} else if t.intEvery == 0 {
		t.intEvery = 1
	}
	if slots > 0 {
		t.intSlots = slots
	} else if t.intSlots == 0 {
		t.intSlots = 8
	}
	t.buildINT()
	return t.intc
}

// INT returns the in-band telemetry collector, or nil when telemetry is off.
func (t *Topology) INT() *inband.Collector { return t.intc }

// buildINT registers a rich F_tel operation on every router and creates the
// postcard collector. Hop IDs are 1-based positions in sorted router-name
// order, so a given topology always numbers hops the same way. Idempotent;
// no-op while telemetry is off.
func (t *Topology) buildINT() {
	if t.intBuilt || t.intEvery <= 0 {
		return
	}
	t.intBuilt = true
	names := make([]string, 0, len(t.routers))
	for n := range t.routers {
		names = append(names, n)
	}
	sortStrings(names)
	t.intIDs = make(map[string]uint32, len(names))
	t.intNames = make(map[uint32]string, len(names))
	for i, n := range names {
		t.intIDs[n] = uint32(i + 1)
		t.intNames[uint32(i+1)] = n
	}
	t.intc = inband.NewCollector(inband.Config{
		Expected: t.expectedPath,
		HopName:  func(id uint32) string { return t.intNames[id] },
	})
	for _, n := range names {
		rn := t.routers[n]
		pipes := rn.pipes
		cfg := rn.cfg
		rn.r.Registry().MustRegister(extops.NewTelWith(extops.TelConfig{
			HopID: t.intIDs[n],
			Now:   func() time.Time { return time.Unix(0, int64(t.sim.Now())) },
			// Same clock the batched serve layer stamps AdmittedAt with, so
			// per-hop latency is admission→F_tel in virtual nanoseconds.
			ClockNs: func() int64 { return int64(t.sim.Now()) },
			// Topo links are zero-bandwidth, so serialization queues never
			// form; in-flight copies on the router's egress pipes are the
			// depth proxy (max'd with the serve layer's burst depth).
			QueueDepth: func() int {
				d := 0
				for _, p := range pipes {
					d += p.InFlight()
				}
				return d
			},
			Epoch: func() uint32 {
				return cfg.FIB32.Epoch() + cfg.FIB128.Epoch() + cfg.NameFIB.Epoch()
			},
		}))
	}
}

// intWrap appends an F_tel region to every int-th injected packet. Routers
// mutate that region in flight, which defeats fingerprint-based trace
// correlation, so when journey tracing is also on the packet additionally
// carries an explicit TraceCtx — appended after the telemetry region so the
// per-packet ID stays out of the flow key (locations before the region).
func (t *Topology) intWrap(h *core.Header) *core.Header {
	if t.intEvery <= 0 {
		return h
	}
	t.intSeq++
	if (t.intSeq-1)%int64(t.intEvery) != 0 {
		return h
	}
	h = profiles.WithTelemetry(h, t.intSlots)
	if t.journeys != nil {
		h = journey.WithTraceCtx(h, journey.TraceID(t.intSeq))
	}
	return h
}

// expectedPath predicts the hop sequence a postcard's packet should have
// taken by walking the current FIBs from its first recorded hop — the oracle
// the collector cross-checks recorded paths against. Interests walk the
// name FIBs, ipv4 the 32-bit tables; data packets ride PIT reverse state,
// which no table predicts, so they get no prediction.
func (t *Topology) expectedPath(pc *inband.Postcard) ([]uint32, bool) {
	if len(pc.Hops) == 0 || (pc.Proto != "interest" && pc.Proto != "ipv4") {
		return nil, false
	}
	cur, ok := t.intNames[pc.Hops[0].HopID]
	if !ok {
		return nil, false
	}
	var path []uint32
	for range t.routers { // bounded: a longer walk means a FIB loop
		rn := t.routers[cur]
		path = append(path, t.intIDs[cur])
		var nh fib.NextHop
		if pc.Proto == "interest" {
			nh, ok = rn.cfg.NameFIB.LookupUint32(pc.Dst)
		} else {
			nh, ok = rn.cfg.FIB32.LookupUint32(pc.Dst)
		}
		if !ok {
			return nil, false
		}
		if nh.Port == fib.PortLocal {
			return path, true
		}
		peer, ok := rn.peers[nh.Port]
		if !ok {
			return nil, false
		}
		if peer.host {
			return path, true
		}
		cur = peer.name
	}
	return nil, false
}

// stripINT is the delivering-edge termination: decode the packet's F_tel
// region into a postcard, hand it to the collector, and zero the region so
// consumers of the delivered packet never see fabric telemetry.
func (h *hostNode) stripINT(pkt []byte, v core.View, profile string) {
	t := h.topo
	region, off, ok := profiles.TelemetryRegion(v)
	if !ok {
		return
	}
	hops, overflow, err := extops.DecodeTel(region)
	if err != nil {
		t.intc.CountDecodeError()
		return
	}
	if profile == "other" && v.FNNum() > 0 {
		switch v.FN(0).Key {
		case core.KeyMatch32:
			profile = "ipv4"
		case core.KeyMatch128:
			profile = "ipv6"
		}
	}
	// Fold the leading FN key into the flow identity: an interest and its
	// data reply carry the same name bytes but traverse opposite paths, and
	// must not look like one rerouted flow.
	flow := inband.FlowOf(v.Locations(), off) ^ (uint64(v.FN(0).Key)+1)*0x9E3779B97F4A7C15
	t.intc.Add(inband.Postcard{
		Flow:     flow,
		Trace:    uint64(journey.TraceOf(pkt)),
		Node:     h.name,
		At:       int64(t.sim.Now()),
		Dst:      dstOf(v),
		Proto:    profile,
		Hops:     hops,
		Overflow: overflow,
	})
	for i := range region {
		region[i] = 0
	}
}

// dstOf reads the 4-byte operand the packet's first FN matches on — the
// content name for interests, the destination address for ipv4 — which is
// exactly the key expectedPath feeds back into the FIB walk.
func dstOf(v core.View) uint32 {
	if v.FNNum() == 0 {
		return 0
	}
	fn := v.FN(0)
	if fn.Loc%8 != 0 {
		return 0
	}
	locs := v.Locations()
	off := int(fn.Loc / 8)
	if off+4 > len(locs) {
		return 0
	}
	return uint32(locs[off])<<24 | uint32(locs[off+1])<<16 | uint32(locs[off+2])<<8 | uint32(locs[off+3])
}

// hostSpan files a host-edge span when journey tracing is on.
func (h *hostNode) hostSpan(kind journey.SpanKind, pkt []byte) {
	c := h.topo.journeys
	if c == nil {
		return
	}
	id := journey.TraceOf(pkt)
	if id == 0 {
		return
	}
	at := int64(h.topo.sim.Now())
	sp := journey.Span{Trace: id, Kind: kind, Node: h.name, Start: at, End: at}
	if v, err := core.ParseView(pkt); err == nil {
		sp.Proto = journey.ProtoOf(v)
	}
	c.AddSpan(sp)
}

func (h *hostNode) send(pkt []byte) {
	h.hostSpan(journey.SpanHostSend, pkt)
	if h.port != nil {
		h.port.Send(pkt)
	}
}

func (h *hostNode) receive(pkt []byte) {
	t := h.topo
	h.hostSpan(journey.SpanHostRecv, pkt)
	v, err := core.ParseView(pkt)
	if err != nil {
		return
	}
	profile := "other"
	if v.FNNum() > 0 {
		switch v.FN(0).Key {
		case core.KeyFIB:
			profile = "interest"
		case core.KeyPIT:
			profile = "data"
		}
	}
	if t.intc != nil {
		h.stripINT(pkt, v, profile)
	}
	// Producers answer interests for names they serve.
	if profile == "interest" {
		name := nameOf(v)
		if payload, serves := h.produces[name]; serves {
			if t.Log != nil {
				t.Log("[%v] %s serves %#08x", t.sim.Now(), h.name, name)
			}
			reply, err := buildPacket(t.intWrap(profiles.NDNData(name)), []byte(payload))
			if err == nil {
				t.sim.Schedule(0, func() { h.send(reply) })
			}
			return
		}
	}
	t.Deliveries = append(t.Deliveries, Delivery{
		Host:    h.name,
		At:      t.sim.Now(),
		Payload: string(v.Payload()),
		Profile: profile,
	})
	if t.Log != nil {
		t.Log("[%v] %s received %s %q", t.sim.Now(), h.name, profile, v.Payload())
	}
}

// Run schedules the scenario and drains the simulator, returning the
// deliveries observed.
func (t *Topology) Run() []Delivery {
	t.buildSpeakers()
	t.buildINT()
	for _, e := range t.events {
		e := e
		t.sim.Schedule(e.at, e.fn)
	}
	t.events = nil
	t.sim.Run()
	return t.Deliveries
}

// Sample is one periodic observation of every router's counters during a
// sampled run. Rates derive from adjacent samples: Routers[n].Delta(prev)
// over the sampling interval.
type Sample struct {
	// At is the virtual-time tick boundary the sample was taken at.
	At time.Duration
	// Routers maps router name to its counter snapshot at At.
	Routers map[string]telemetry.Snapshot
}

// RunSampled runs the scenario like Run but additionally snapshots every
// router's telemetry at each interval boundary of virtual time, returning
// the series (starting with a t=0 baseline). The time series is what chaos
// assertions hang on — e.g. that a drop or retransmit *rate* decays to zero
// after an impaired link heals, which final totals cannot show.
func (t *Topology) RunSampled(interval time.Duration) ([]Delivery, []Sample) {
	if interval <= 0 {
		return t.Run(), nil
	}
	t.buildSpeakers()
	t.buildINT()
	for _, e := range t.events {
		t.sim.Schedule(e.at, e.fn)
	}
	t.events = nil
	snap := func(at time.Duration) Sample {
		s := Sample{At: at, Routers: make(map[string]telemetry.Snapshot, len(t.routers))}
		for n, rn := range t.routers {
			s.Routers[n] = rn.metrics.Snapshot()
		}
		return s
	}
	series := []Sample{snap(0)}
	for next := interval; t.sim.Pending() > 0; next += interval {
		t.sim.RunUntil(next)
		series = append(series, snap(next))
	}
	return t.Deliveries, series
}

// Report summarizes router telemetry and link fault counters after a run.
func (t *Topology) Report(w io.Writer) {
	names := make([]string, 0, len(t.routers))
	for n := range t.routers {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(w, "router %s:\n%s", n, indent(t.routers[n].metrics.Snapshot().String()))
	}
	for _, fl := range t.faulty {
		if fl.im.Faults() == 0 {
			continue
		}
		fmt.Fprintf(w, "link %s: drops=%d dups=%d reorders=%d corrupts=%d down-drops=%d\n",
			fl.label, fl.im.Drops, fl.im.Dups, fl.im.Reorders, fl.im.Corrupts, fl.im.DownDrops)
	}
}

func nameOf(v core.View) uint32 {
	locs := v.Locations()
	if len(locs) < 4 {
		return 0
	}
	return uint32(locs[0])<<24 | uint32(locs[1])<<16 | uint32(locs[2])<<8 | uint32(locs[3])
}

func parse32(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		b, err := parseDotted(s)
		if err != nil {
			return 0, err
		}
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return parseHex32(s)
}

func parseHex32(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	return uint32(v), err
}

func parseDotted(s string) ([4]byte, error) {
	var out [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return out, fmt.Errorf("want a.b.c.d, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return out, fmt.Errorf("bad octet %q", p)
		}
		out[i] = byte(v)
	}
	return out, nil
}

func buildPacket(h *core.Header, payload []byte) ([]byte, error) {
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(payload)))
	if err != nil {
		return nil, err
	}
	return append(buf, payload...), nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
