// Package topo parses and runs topology/scenario files: a line-based DSL
// describing DIP routers, hosts, links, routes, producers, and timed
// traffic, executed on the virtual-time simulator. cmd/diptopo is its CLI.
//
// Syntax (one directive per line, '#' comments):
//
//	router R1 [cache=64] [csshards=N] [cscold=SLOTS] [csslot=BYTES] [secret=<32 hex>] [hopindex=N] [requirepass] [pitperport=N] [pitshards=N]
//	host   H1
//	link   R1:0 H1 [delay]          # bidirectional; hosts have one port
//	link   R1:1 R2:0 2ms
//	link   R1:1 R2:0 2ms loss=0.1 seed=42    # seeded fault injection:
//	                                # loss= dup= corrupt= reorder= (probabilities),
//	                                # jitter=2ms, down=10ms-20ms (window), seed=N
//	route32 R1 10.0.0.0/8 1         # IPv4-style route to a port, or "local"
//	route128 R1 20/8 1              # hex prefix
//	name   R1 aa000000/8 1          # content-name route
//	produce H2 aa000001 "payload"   # H2 answers interests for the name
//	interest H1 aa000001 [at 5ms]   # scenario traffic
//	send   H1 ipv4 10.0.0.1 10.0.0.9 "payload" [at 1ms]
//	speakers [refresh=50ms] [hold=150ms] [horizon=1s] [maxmetric=16]
//	                                # in-fabric route exchange on all routers
//	linkdown R1 R2 at 10ms [silent] # kill a router-router link (silent: no
//	                                # carrier loss; only hold-timer recovery)
//	linkup   R1 R2 at 30ms          # revive it
package topo

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/journey"
	"dip/internal/netsim"
	"dip/internal/ops"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/router"
	"dip/internal/telemetry"
)

// Delivery records a packet arriving at a host.
type Delivery struct {
	Host    string
	At      time.Duration
	Payload string
	Profile string // "interest", "data", "other"
}

// Topology is a parsed, runnable network.
type Topology struct {
	sim        *netsim.Simulator
	routers    map[string]*routerNode
	hosts      map[string]*hostNode
	events     []event
	faulty     []faultyLink
	links      []topoLink
	rlinks     []*routerLink
	speak      *speakOptions
	speakers   map[string]*bootstrap.Speaker
	journeys   *journey.Collector
	Deliveries []Delivery
	// Log receives a line per notable event; nil discards.
	Log func(format string, args ...any)
}

type faultyLink struct {
	label string
	im    *netsim.Impairment
}

type topoLink struct {
	label string
	pipe  *netsim.Endpoint
}

type routerNode struct {
	name    string
	cfg     ops.Config
	r       *router.Router
	metrics *telemetry.Metrics
	ports   int
	// tiered is the two-tier content store when the router was declared
	// with cscold=N: cold reads run synchronously (Readers 0) under the
	// virtual clock, and completions re-inject via a Schedule(0) event.
	tiered *cs.Tiered[uint32]
	// in is the batched ingress when the router was declared with batch=N:
	// links Submit into it and schedule a Pump, so queue service runs
	// burst-shaped but still in deterministic virtual-time order.
	in *router.Ingress
}

type hostNode struct {
	name     string
	topo     *Topology
	port     router.Port // toward the network (set by link)
	produces map[uint32]string
}

type event struct {
	at time.Duration
	fn func()
}

// Parse reads a topology file.
func Parse(r io.Reader) (*Topology, error) {
	t := &Topology{
		sim:     netsim.New(),
		routers: map[string]*routerNode{},
		hosts:   map[string]*hostNode{},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := t.directive(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) directive(line string) error {
	fields := tokenize(line)
	switch fields[0] {
	case "router":
		return t.addRouter(fields[1:])
	case "host":
		return t.addHost(fields[1:])
	case "link":
		return t.addLink(fields[1:])
	case "route32", "route128", "name":
		return t.addRoute(fields[0], fields[1:])
	case "produce":
		return t.addProducer(fields[1:])
	case "interest":
		return t.addInterest(fields[1:])
	case "send":
		return t.addSend(fields[1:])
	case "speakers":
		return t.addSpeakers(fields[1:])
	case "linkdown":
		return t.addLinkEvent(false, fields[1:])
	case "linkup":
		return t.addLinkEvent(true, fields[1:])
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// tokenize splits on spaces but keeps quoted strings whole (without quotes).
func tokenize(line string) []string {
	var out []string
	for len(line) > 0 {
		line = strings.TrimLeft(line, " \t")
		if line == "" {
			break
		}
		if line[0] == '"' {
			end := strings.IndexByte(line[1:], '"')
			if end < 0 {
				out = append(out, line[1:])
				return out
			}
			out = append(out, line[1:1+end])
			line = line[2+end:]
			continue
		}
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			out = append(out, line)
			break
		}
		out = append(out, line[:sp])
		line = line[sp+1:]
	}
	return out
}

func (t *Topology) addRouter(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("router needs a name")
	}
	name := args[0]
	if _, dup := t.routers[name]; dup {
		return fmt.Errorf("router %s redefined", name)
	}
	cfg := ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
	}
	var cacheCap, csShards, csCold, csSlot, pitPerPort, pitShards, batch, queue int
	for _, opt := range args[1:] {
		k, v, _ := strings.Cut(opt, "=")
		switch k {
		case "batch":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("batch wants a positive burst size, got %q", v)
			}
			batch = n
		case "queue":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("queue wants a positive depth, got %q", v)
			}
			queue = n
		case "cache":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("cache: %v", err)
			}
			cacheCap = n
		case "csshards":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("csshards wants a positive count, got %q", v)
			}
			csShards = n
		case "cscold":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("cscold wants a positive slot count, got %q", v)
			}
			csCold = n
		case "csslot":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("csslot wants a positive byte size, got %q", v)
			}
			csSlot = n
		case "secret":
			secret, err := hex.DecodeString(v)
			if err != nil || len(secret) != 16 {
				return fmt.Errorf("secret must be 32 hex chars")
			}
			sv, err := drkey.NewSecretValue(name, secret)
			if err != nil {
				return err
			}
			cfg.Secret = sv
		case "hopindex":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("hopindex: %v", err)
			}
			cfg.HopIndex = uint8(n)
		case "requirepass":
			cfg.RequirePass = true
		case "pitperport":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("pitperport wants a positive count, got %q", v)
			}
			pitPerPort = n
		case "pitshards":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("pitshards wants a positive count, got %q", v)
			}
			pitShards = n
		default:
			return fmt.Errorf("unknown router option %q", opt)
		}
	}
	var popts []pit.Option[uint32]
	if pitPerPort > 0 {
		popts = append(popts, pit.WithPerPortCap[uint32](pitPerPort))
	}
	if pitShards > 0 {
		popts = append(popts, pit.WithShards[uint32](pitShards))
	}
	cfg.PIT = pit.New[uint32](popts...)
	if csCold > 0 && cacheCap <= 0 {
		return fmt.Errorf("cscold= needs a hot tier; add cache=N")
	}
	if csSlot > 0 && csCold == 0 {
		return fmt.Errorf("csslot= only applies with cscold=N")
	}
	if cacheCap > 0 {
		if csShards > 1 {
			cfg.ContentStore = cs.NewSharded[uint32](cacheCap, csShards)
		} else {
			cfg.ContentStore = cs.New[uint32](cacheCap)
		}
	}
	var tiered *cs.Tiered[uint32]
	if csCold > 0 {
		// Readers 0 keeps the cold tier synchronous: the pread happens
		// inside the interest's own sim event and the completion re-injects
		// via Schedule(0), so runs stay single-goroutine deterministic.
		var err error
		tiered, err = cs.NewTiered(cfg.ContentStore, cs.ColdConfig{
			Slots:    csCold,
			SlotSize: csSlot,
			Now:      func() int64 { return int64(t.sim.Now()) },
		})
		if err != nil {
			return fmt.Errorf("cscold: %v", err)
		}
		cfg.TieredStore = tiered
	}
	if queue > 0 && batch == 0 {
		return fmt.Errorf("queue= only applies to batched routers; add batch=N")
	}
	rn := &routerNode{name: name, cfg: cfg, metrics: &telemetry.Metrics{}, tiered: tiered}
	rn.r = router.New(ops.NewRouterRegistry(cfg), router.Config{
		Name:    name,
		Metrics: rn.metrics,
	})
	if batch > 0 {
		if queue == 0 {
			queue = 256
		}
		// Pump mode keeps the simulation single-goroutine and deterministic;
		// the burst discipline (collect up to batch, run to completion) is
		// exactly what the worker forwarders execute.
		rn.in = rn.r.ServeGuarded(router.ServeConfig{
			Workers:   0,
			Batch:     batch,
			HighDepth: queue,
			LowDepth:  queue,
			Clock:     t.sim.Now,
		})
	}
	if tiered != nil {
		tiered.SetReinject(func(cname uint32, data []byte, start, end int64) {
			reply, err := buildPacket(profiles.NDNData(cname), data)
			if err != nil {
				return
			}
			// Schedule(0) breaks re-entrancy: the synchronous read completes
			// inside the interest's HandlePacket, so the data packet must
			// enter the router as its own event, after the interest absorbs.
			t.sim.Schedule(0, func() {
				if t.journeys != nil {
					t.journeys.AddSpan(journey.Span{
						Trace:   journey.TraceOf(reply),
						Kind:    journey.SpanCSCold,
						Node:    name,
						Start:   start,
						End:     end,
						Name:    cname,
						HasName: true,
						Proto:   "ndn-data",
					})
				}
				if t.Log != nil {
					t.Log("[%v] %s cold read %#08x re-injected", t.sim.Now(), name, cname)
				}
				if rn.in != nil {
					if rn.in.Submit(reply, 0) {
						t.sim.Schedule(0, func() { rn.in.Pump() })
					}
					return
				}
				rn.r.HandlePacket(reply, 0)
			})
		})
	}
	t.routers[name] = rn
	return nil
}

func (t *Topology) addHost(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("host needs a name")
	}
	name := args[0]
	if _, dup := t.hosts[name]; dup {
		return fmt.Errorf("host %s redefined", name)
	}
	t.hosts[name] = &hostNode{name: name, topo: t, produces: map[uint32]string{}}
	return nil
}

// endpoint resolves "NAME[:port]".
func (t *Topology) endpoint(spec string) (name string, port int, isHost bool, err error) {
	name, portStr, has := strings.Cut(spec, ":")
	if _, ok := t.hosts[name]; ok {
		if has {
			return "", 0, false, fmt.Errorf("hosts have no port numbers: %q", spec)
		}
		return name, 0, true, nil
	}
	if _, ok := t.routers[name]; !ok {
		return "", 0, false, fmt.Errorf("unknown node %q", name)
	}
	if !has {
		return "", 0, false, fmt.Errorf("router endpoint needs a port: %q", spec)
	}
	port, err = strconv.Atoi(portStr)
	return name, port, false, err
}

// parseImpairments reads the link directive's key=value fault options into
// a pair of per-direction impairments (nil when none are given). Seeds are
// derived per direction so both fault sequences are independent yet fully
// determined by the one seed= value.
func parseImpairments(opts []string) (ab, ba *netsim.Impairment, err error) {
	var seed int64 = 1
	type setter func(im *netsim.Impairment)
	var setters []setter
	prob := func(k, v string, assign func(im *netsim.Impairment, p float64)) error {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("%s wants a probability in [0,1], got %q", k, v)
		}
		setters = append(setters, func(im *netsim.Impairment) { assign(im, p) })
		return nil
	}
	for _, opt := range opts {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, nil, fmt.Errorf("unknown link option %q", opt)
		}
		switch k {
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("seed: %v", err)
			}
			seed = s
		case "loss":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.DropProb = p }); err != nil {
				return nil, nil, err
			}
		case "dup":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.DupProb = p }); err != nil {
				return nil, nil, err
			}
		case "corrupt":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.CorruptProb = p }); err != nil {
				return nil, nil, err
			}
		case "reorder":
			if err := prob(k, v, func(im *netsim.Impairment, p float64) { im.ReorderProb = p }); err != nil {
				return nil, nil, err
			}
		case "jitter":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, nil, fmt.Errorf("jitter: %v", err)
			}
			setters = append(setters, func(im *netsim.Impairment) { im.Jitter = d })
		case "down":
			fromStr, toStr, ok := strings.Cut(v, "-")
			if !ok {
				return nil, nil, fmt.Errorf("down wants from-to durations, got %q", v)
			}
			from, err := time.ParseDuration(fromStr)
			if err != nil {
				return nil, nil, fmt.Errorf("down: %v", err)
			}
			to, err := time.ParseDuration(toStr)
			if err != nil {
				return nil, nil, fmt.Errorf("down: %v", err)
			}
			setters = append(setters, func(im *netsim.Impairment) { im.DownBetween(from, to) })
		default:
			return nil, nil, fmt.Errorf("unknown link option %q", opt)
		}
	}
	if len(setters) == 0 {
		return nil, nil, nil
	}
	ab, ba = netsim.NewImpairment(seed), netsim.NewImpairment(seed+1)
	for _, s := range setters {
		s(ab)
		s(ba)
	}
	return ab, ba, nil
}

func (t *Topology) addLink(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("link needs two endpoints")
	}
	delay := time.Millisecond
	opts := args[2:]
	if len(opts) > 0 && !strings.Contains(opts[0], "=") {
		d, err := time.ParseDuration(opts[0])
		if err != nil {
			return fmt.Errorf("delay: %v", err)
		}
		delay = d
		opts = opts[1:]
	}
	imAB, imBA, err := parseImpairments(opts)
	if err != nil {
		return err
	}
	aName, aPort, aHost, err := t.endpoint(args[0])
	if err != nil {
		return err
	}
	bName, bPort, bHost, err := t.endpoint(args[1])
	if err != nil {
		return err
	}
	recvOf := func(name string, isHost bool, port int) netsim.Receiver {
		if isHost {
			h := t.hosts[name]
			return netsim.ReceiverFunc(func(pkt []byte, _ int) { h.receive(pkt) })
		}
		rn := t.routers[name]
		if rn.in != nil {
			in, sim := rn.in, t.sim
			return netsim.ReceiverFunc(func(pkt []byte, p int) {
				if in.Submit(pkt, p) {
					sim.Schedule(0, func() { in.Pump() })
				}
			})
		}
		r := rn.r
		return netsim.ReceiverFunc(func(pkt []byte, p int) { r.HandlePacket(pkt, p) })
	}
	// a → b direction.
	var abOpts, baOpts []netsim.LinkOption
	if imAB != nil {
		abOpts = append(abOpts, netsim.WithImpairment(imAB))
		baOpts = append(baOpts, netsim.WithImpairment(imBA))
		t.faulty = append(t.faulty,
			faultyLink{label: args[0] + "->" + args[1], im: imAB},
			faultyLink{label: args[1] + "->" + args[0], im: imBA})
	}
	abPipe := t.sim.Pipe(recvOf(bName, bHost, bPort), bPort, delay, 0, abOpts...)
	baPipe := t.sim.Pipe(recvOf(aName, aHost, aPort), aPort, delay, 0, baOpts...)
	t.links = append(t.links,
		topoLink{label: aName + "->" + bName, pipe: abPipe},
		topoLink{label: bName + "->" + aName, pipe: baPipe})
	if !aHost && !bHost {
		// Router↔router adjacency: route-exchange speakers peer over it and
		// linkdown/linkup events target it by router-name pair.
		t.rlinks = append(t.rlinks, &routerLink{
			aName: aName, bName: bName, aPort: aPort, bPort: bPort,
			ab: abPipe, ba: baPipe,
		})
	}
	attach := func(name string, isHost bool, port int, pipe *netsim.Endpoint) error {
		if isHost {
			t.hosts[name].port = pipe
			return nil
		}
		rn := t.routers[name]
		for rn.ports <= port {
			// Pad unassigned ports with black holes so indices line up.
			if rn.ports == port {
				rn.r.AttachPort(pipe)
			} else {
				rn.r.AttachPort(router.PortFunc(func([]byte) {}))
			}
			rn.ports++
		}
		return nil
	}
	if err := attach(aName, aHost, aPort, abPipe); err != nil {
		return err
	}
	return attach(bName, bHost, bPort, baPipe)
}

func (t *Topology) addRoute(kind string, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("%s needs: router prefix/len port|local", kind)
	}
	rn, ok := t.routers[args[0]]
	if !ok {
		return fmt.Errorf("unknown router %q", args[0])
	}
	prefixStr, lenStr, ok := strings.Cut(args[1], "/")
	if !ok {
		return fmt.Errorf("prefix needs /len")
	}
	plen, err := strconv.Atoi(lenStr)
	if err != nil {
		return err
	}
	nh := fib.Local
	if args[2] != "local" {
		port, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("port: %v", err)
		}
		nh = fib.NextHop{Port: port}
	}
	switch kind {
	case "route32":
		key, err := parse32(prefixStr)
		if err != nil {
			return err
		}
		return rn.cfg.FIB32.AddUint32(key, plen, nh)
	case "name":
		key, err := parseHex32(prefixStr)
		if err != nil {
			return err
		}
		return rn.cfg.NameFIB.AddUint32(key, plen, nh)
	default: // route128
		key, err := hex.DecodeString(prefixStr)
		if err != nil {
			return err
		}
		if len(key) > 16 {
			// Input-reachable: padding with 16-len(key) would panic on a
			// long prefix (fuzz-found class of bug).
			return fmt.Errorf("route128 prefix %d bytes, max 16", len(key))
		}
		key = append(key, make([]byte, 16-len(key))...)
		return rn.cfg.FIB128.Add(key, plen, nh)
	}
}

func (t *Topology) addProducer(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("produce needs: host name payload")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	name, err := parseHex32(args[1])
	if err != nil {
		return err
	}
	h.produces[name] = args[2]
	return nil
}

func (t *Topology) scheduleAt(args []string) (rest []string, at time.Duration, err error) {
	for i := 0; i+1 < len(args); i++ {
		if args[i] == "at" {
			d, err := time.ParseDuration(args[i+1])
			if err != nil {
				return nil, 0, err
			}
			return append(append([]string{}, args[:i]...), args[i+2:]...), d, nil
		}
	}
	return args, 0, nil
}

func (t *Topology) addInterest(args []string) error {
	args, at, err := t.scheduleAt(args)
	if err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("interest needs: host name [at D]")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	name, err := parseHex32(args[1])
	if err != nil {
		return err
	}
	t.events = append(t.events, event{at: at, fn: func() {
		b, err := buildPacket(profiles.NDNInterest(name), nil)
		if err != nil {
			return
		}
		h.send(b)
	}})
	return nil
}

func (t *Topology) addSend(args []string) error {
	args, at, err := t.scheduleAt(args)
	if err != nil {
		return err
	}
	if len(args) != 5 || args[1] != "ipv4" {
		return fmt.Errorf("send needs: host ipv4 src dst payload [at D]")
	}
	h, ok := t.hosts[args[0]]
	if !ok {
		return fmt.Errorf("unknown host %q", args[0])
	}
	src, err := parseDotted(args[2])
	if err != nil {
		return err
	}
	dst, err := parseDotted(args[3])
	if err != nil {
		return err
	}
	payload := args[4]
	t.events = append(t.events, event{at: at, fn: func() {
		b, err := buildPacket(profiles.IPv4(src, dst), []byte(payload))
		if err != nil {
			return
		}
		h.send(b)
	}})
	return nil
}

// EnableJourneys turns on end-to-end journey tracing for the run: every
// every-th packet per router gets a span (1 traces everything), every link
// transit and host send/receive is observed, and all spans are stitched by
// the returned Collector. All span timestamps come from the simulator's
// virtual clock — the same time source RunSampled's series ticks on — so
// spans, samples, and deliveries are mutually comparable. Call after Parse,
// before Run.
func (t *Topology) EnableJourneys(every int) *journey.Collector {
	if t.journeys != nil {
		return t.journeys
	}
	c := journey.NewCollector(journey.Config{})
	now := func() int64 { return int64(t.sim.Now()) }
	for _, rn := range t.routers {
		rn.r.SetRecorder(journey.NewRouterTap(rn.name, c, rn.metrics, every, now))
	}
	for _, l := range t.links {
		l.pipe.SetObserver(journey.NewLinkTap(l.label, c))
	}
	t.journeys = c
	return c
}

// TierStats returns the named router's two-tier content-store snapshot,
// or ok=false when it has no cold tier (no cscold= option).
func (t *Topology) TierStats(router string) (cs.TierStats, bool) {
	rn, ok := t.routers[router]
	if !ok || rn.tiered == nil {
		return cs.TierStats{}, false
	}
	return rn.tiered.Stats(), true
}

// Close releases per-router resources (cold-tier arena files). Safe to
// call multiple times; runs must be finished first.
func (t *Topology) Close() {
	for _, rn := range t.routers {
		if rn.tiered != nil {
			rn.tiered.Close()
		}
	}
}

// Journeys returns the collector installed by EnableJourneys, or nil.
func (t *Topology) Journeys() *journey.Collector { return t.journeys }

// hostSpan files a host-edge span when journey tracing is on.
func (h *hostNode) hostSpan(kind journey.SpanKind, pkt []byte) {
	c := h.topo.journeys
	if c == nil {
		return
	}
	id := journey.TraceOf(pkt)
	if id == 0 {
		return
	}
	at := int64(h.topo.sim.Now())
	sp := journey.Span{Trace: id, Kind: kind, Node: h.name, Start: at, End: at}
	if v, err := core.ParseView(pkt); err == nil {
		sp.Proto = journey.ProtoOf(v)
	}
	c.AddSpan(sp)
}

func (h *hostNode) send(pkt []byte) {
	h.hostSpan(journey.SpanHostSend, pkt)
	if h.port != nil {
		h.port.Send(pkt)
	}
}

func (h *hostNode) receive(pkt []byte) {
	t := h.topo
	h.hostSpan(journey.SpanHostRecv, pkt)
	v, err := core.ParseView(pkt)
	if err != nil {
		return
	}
	profile := "other"
	if v.FNNum() > 0 {
		switch v.FN(0).Key {
		case core.KeyFIB:
			profile = "interest"
		case core.KeyPIT:
			profile = "data"
		}
	}
	// Producers answer interests for names they serve.
	if profile == "interest" {
		name := nameOf(v)
		if payload, serves := h.produces[name]; serves {
			if t.Log != nil {
				t.Log("[%v] %s serves %#08x", t.sim.Now(), h.name, name)
			}
			reply, err := buildPacket(profiles.NDNData(name), []byte(payload))
			if err == nil {
				t.sim.Schedule(0, func() { h.send(reply) })
			}
			return
		}
	}
	t.Deliveries = append(t.Deliveries, Delivery{
		Host:    h.name,
		At:      t.sim.Now(),
		Payload: string(v.Payload()),
		Profile: profile,
	})
	if t.Log != nil {
		t.Log("[%v] %s received %s %q", t.sim.Now(), h.name, profile, v.Payload())
	}
}

// Run schedules the scenario and drains the simulator, returning the
// deliveries observed.
func (t *Topology) Run() []Delivery {
	t.buildSpeakers()
	for _, e := range t.events {
		e := e
		t.sim.Schedule(e.at, e.fn)
	}
	t.events = nil
	t.sim.Run()
	return t.Deliveries
}

// Sample is one periodic observation of every router's counters during a
// sampled run. Rates derive from adjacent samples: Routers[n].Delta(prev)
// over the sampling interval.
type Sample struct {
	// At is the virtual-time tick boundary the sample was taken at.
	At time.Duration
	// Routers maps router name to its counter snapshot at At.
	Routers map[string]telemetry.Snapshot
}

// RunSampled runs the scenario like Run but additionally snapshots every
// router's telemetry at each interval boundary of virtual time, returning
// the series (starting with a t=0 baseline). The time series is what chaos
// assertions hang on — e.g. that a drop or retransmit *rate* decays to zero
// after an impaired link heals, which final totals cannot show.
func (t *Topology) RunSampled(interval time.Duration) ([]Delivery, []Sample) {
	if interval <= 0 {
		return t.Run(), nil
	}
	t.buildSpeakers()
	for _, e := range t.events {
		t.sim.Schedule(e.at, e.fn)
	}
	t.events = nil
	snap := func(at time.Duration) Sample {
		s := Sample{At: at, Routers: make(map[string]telemetry.Snapshot, len(t.routers))}
		for n, rn := range t.routers {
			s.Routers[n] = rn.metrics.Snapshot()
		}
		return s
	}
	series := []Sample{snap(0)}
	for next := interval; t.sim.Pending() > 0; next += interval {
		t.sim.RunUntil(next)
		series = append(series, snap(next))
	}
	return t.Deliveries, series
}

// Report summarizes router telemetry and link fault counters after a run.
func (t *Topology) Report(w io.Writer) {
	names := make([]string, 0, len(t.routers))
	for n := range t.routers {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(w, "router %s:\n%s", n, indent(t.routers[n].metrics.Snapshot().String()))
	}
	for _, fl := range t.faulty {
		if fl.im.Faults() == 0 {
			continue
		}
		fmt.Fprintf(w, "link %s: drops=%d dups=%d reorders=%d corrupts=%d down-drops=%d\n",
			fl.label, fl.im.Drops, fl.im.Dups, fl.im.Reorders, fl.im.Corrupts, fl.im.DownDrops)
	}
}

func nameOf(v core.View) uint32 {
	locs := v.Locations()
	if len(locs) < 4 {
		return 0
	}
	return uint32(locs[0])<<24 | uint32(locs[1])<<16 | uint32(locs[2])<<8 | uint32(locs[3])
}

func parse32(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		b, err := parseDotted(s)
		if err != nil {
			return 0, err
		}
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return parseHex32(s)
}

func parseHex32(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	return uint32(v), err
}

func parseDotted(s string) ([4]byte, error) {
	var out [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return out, fmt.Errorf("want a.b.c.d, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return out, fmt.Errorf("bad octet %q", p)
		}
		out[i] = byte(v)
	}
	return out, nil
}

func buildPacket(h *core.Header, payload []byte) ([]byte, error) {
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(payload)))
	if err != nil {
		return nil, err
	}
	return append(buf, payload...), nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
