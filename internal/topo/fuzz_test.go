package topo

import (
	"strings"
	"testing"
)

// FuzzTopoParse: arbitrary topology files must parse or fail with an error,
// never panic — the DSL is operator input, and a malformed scenario file
// must not take down the tool that loads it. (This fuzzer guards the
// route128 padding bug class: a >16-byte hex prefix used to drive a
// negative make() count.)
func FuzzTopoParse(f *testing.F) {
	f.Add("router R1\nhost H1\nlink R1:0 H1\n")
	f.Add("router R1 cache=64 pitperport=8\nhost H1\nlink R1:0 H1 2ms loss=0.1 seed=42\n")
	f.Add("router R1\nroute32 R1 10.0.0.0/8 1\nroute128 R1 20/8 1\nname R1 aa000000/8 1\n")
	f.Add("host H1\nproduce H1 aa000001 \"payload\"\ninterest H1 aa000001 at 5ms\n")
	f.Add("send H1 ipv4 10.0.0.1 10.0.0.9 \"x\" at 1ms\n")
	f.Add("route128 R1 aabbccddeeff00112233445566778899aabb/8 1\n") // >16-byte prefix
	f.Add("# comment\n\nrouter \"R 1\"\nlink R1:999 R1:999\n")
	f.Add("router R1 secret=00112233445566778899aabbccddeeff\n")
	f.Fuzz(func(t *testing.T, data string) {
		topo, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must also survive a run (events may be empty).
		topo.Run()
	})
}
