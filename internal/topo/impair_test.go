package topo

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const lossyTopo = `
router R1
router R2
host   C
host   P

link C R1:0
link R1:1 R2:0 2ms loss=0.3 seed=9
link R2:1 P

name R1 aa000000/8 1
name R2 aa000000/8 1

produce P aa000001 "bits"
produce P aa000002 "bits"
produce P aa000003 "bits"
produce P aa000004 "bits"
produce P aa000005 "bits"
produce P aa000006 "bits"
produce P aa000007 "bits"
produce P aa000008 "bits"
interest C aa000001 at 0ms
interest C aa000002 at 10ms
interest C aa000003 at 20ms
interest C aa000004 at 30ms
interest C aa000005 at 40ms
interest C aa000006 at 50ms
interest C aa000007 at 60ms
interest C aa000008 at 70ms
`

func runLossy(t *testing.T) (*Topology, []Delivery) {
	t.Helper()
	tp, err := Parse(strings.NewReader(lossyTopo))
	if err != nil {
		t.Fatal(err)
	}
	return tp, tp.Run()
}

func TestLossyLinkDeterministicAndObservable(t *testing.T) {
	tp1, d1 := runLossy(t)
	_, d2 := runLossy(t)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("seeded lossy run not deterministic:\n run1 %+v\n run2 %+v", d1, d2)
	}
	// With 30% loss each way and no host retransmission, some of the 8
	// interests must fail and some must succeed (seed 9 gives both). Each
	// interest uses a distinct name so PIT aggregation can't tie their fates
	// together.
	if len(d1) == 0 || len(d1) >= 8 {
		t.Fatalf("deliveries %d of 8: loss not exercised", len(d1))
	}
	// The report makes the drops visible.
	var report strings.Builder
	tp1.Report(&report)
	if !strings.Contains(report.String(), "link R1:1->R2:0:") &&
		!strings.Contains(report.String(), "link R2:0->R1:1:") {
		t.Errorf("impairment counters missing from report:\n%s", report.String())
	}
}

func TestLinkDownWindow(t *testing.T) {
	src := `
router R1
host C
host P
link C R1:0
link R1:1 P 1ms down=5ms-15ms seed=3
name R1 aa000000/8 1
produce P aa000001 "x"
produce P aa000002 "x"
interest C aa000001 at 8ms
interest C aa000002 at 20ms
`
	tp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	deliveries := tp.Run()
	// The 8ms interest dies in the down window; the 20ms one succeeds.
	if len(deliveries) != 1 {
		t.Fatalf("deliveries %+v", deliveries)
	}
	if deliveries[0].At < 20*time.Millisecond {
		t.Errorf("delivery at %v cannot be the post-window interest", deliveries[0].At)
	}
}

func TestLinkOptionErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad loss", "router R\nhost H\nlink H R:0 loss=high"},
		{"loss out of range", "router R\nhost H\nlink H R:0 loss=1.5"},
		{"bad seed", "router R\nhost H\nlink H R:0 seed=x"},
		{"bad jitter", "router R\nhost H\nlink H R:0 jitter=soon"},
		{"bad down window", "router R\nhost H\nlink H R:0 down=5ms"},
		{"unknown option", "router R\nhost H\nlink H R:0 mtu=9000"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Errorf("accepted:\n%s", c.src)
			}
		})
	}
}
