// Package inband is the collection side of DIP's in-band telemetry (INT)
// pipeline. Routers stamp F_tel hop records into the packets themselves
// (internal/extops); the delivering edge strips the telemetry region and
// mails the decoded records here as a "postcard". The Collector turns
// postcards into fleet observability off the hot path:
//
//   - per-flow path digests — an order-sensitive hash of the hop-ID
//     sequence — so a route change shows up as a digest flip on the very
//     first packet that took the new path, with the old and new hop
//     sequences attached (packet-level attribution for control-plane
//     reconvergence);
//   - forwarding-loop detection (a hop ID repeating within one postcard);
//   - cross-checks against FIB-derived expected paths;
//   - per-link latency histograms (consecutive hop timestamp deltas) and
//     per-hop queue-depth aggregates with congestion and microburst flags.
//
// Everything here runs at postcard rate — a sampled, delivered-packets-only
// trickle — never at forwarding rate.
package inband

import (
	"sort"
	"sync"

	"dip/internal/extops"
	"dip/internal/nhash"
	"dip/internal/telemetry"
)

// Postcard is one delivered packet's stripped telemetry: the hop records it
// accumulated in flight plus where and when it was delivered.
type Postcard struct {
	// Flow keys the per-flow path state; packets of one conversation must
	// share it (see FlowOf).
	Flow uint64
	// Trace is the packet's journey trace fingerprint when known (0
	// otherwise) — the join key for INT↔journey cross-correlation.
	Trace uint64
	// Node names the delivering element.
	Node string
	// At is the delivery time on the collector's clock (ns).
	At int64
	// Dst is the packet's destination key (32-bit address or content name)
	// when the edge could extract one — the input to expected-path
	// prediction.
	Dst uint32
	// Proto labels the packet's profile ("interest", "data", "ipv4", …) so
	// predictors know which table the fabric routed it by.
	Proto string
	// Hops are the decoded slots, in path order.
	Hops []extops.HopRecord
	// Overflow is the region's overflow bit: the path outgrew the slots,
	// so Hops is a prefix of the real path.
	Overflow bool
}

// Digest returns the order-sensitive FNV-1a-64 hash of the hop-ID sequence.
// Two paths through the same set of hops in different orders digest
// differently; the empty path digests to the FNV offset basis.
func Digest(hops []extops.HopRecord) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := range hops {
		id := hops[i].HopID
		for s := 24; s >= 0; s -= 8 {
			h ^= uint64(byte(id >> s))
			h *= prime64
		}
	}
	return h
}

// FlowOf derives a flow key from a packet's FN-locations region, hashing
// only the bytes before the telemetry operand (telOff, in bytes; negative
// or out-of-range hashes the whole region). Addresses and names live before
// the appended telemetry region, and the region itself mutates per hop —
// so this keys a conversation stably across hops and packets.
func FlowOf(locations []byte, telOff int) uint64 {
	if telOff >= 0 && telOff <= len(locations) {
		locations = locations[:telOff]
	}
	return nhash.Bytes(locations)
}

// PathChange records one per-flow digest flip: the flow's packets stopped
// arriving over OldHops and started arriving over NewHops.
type PathChange struct {
	Flow      uint64
	At        int64 // collector clock, ns
	OldHops   []uint32
	NewHops   []uint32
	OldDigest uint64
	NewDigest uint64
}

// LinkStat aggregates one directed hop-pair (a → b appeared consecutively
// in postcards): transit latency from the hops' timestamp delta.
type LinkStat struct {
	From, To         uint32
	FromName, ToName string
	Count            int64
	SumNs            int64
	// Hist is the log2 latency histogram (telemetry.BucketUpper edges).
	Hist [telemetry.HistBuckets]int64
}

// HopStat aggregates one hop ID across all postcards that crossed it.
type HopStat struct {
	HopID uint32
	Name  string
	Count int64
	// Latency (admission→F_tel) as stamped by the hop itself.
	LatSumNs int64
	LatHist  [telemetry.HistBuckets]int64
	// Queue depth at admission.
	QueueSum    int64
	QueueMax    int
	Congested   int64 // records with the congestion flag set
	Microbursts int64 // records at or above Config.MicroburstDepth
}

// Stats is a Collector snapshot.
type Stats struct {
	Postcards        int64
	Overflows        int64
	Flows            int
	PathChanges      int64
	Loops            int64
	Microbursts      int64
	ExpectedMismatch int64
	DecodeErrors     int64
	Links            []LinkStat   // sorted by (From, To)
	Hops             []HopStat    // sorted by HopID
	Changes          []PathChange // most recent, oldest first
}

// Config tunes a Collector. Zero values select the noted defaults.
type Config struct {
	// Expected, when set, maps a postcard to the hop-ID path the control
	// plane currently predicts for it (ok=false: no prediction, skip the
	// check). A mismatch increments ExpectedMismatch — either stale FIBs
	// (reconvergence in progress) or telemetry lying.
	Expected func(pc *Postcard) (hops []uint32, ok bool)
	// HopName, when set, resolves hop IDs to display names for stats.
	HopName func(id uint32) string
	// MicroburstDepth is the queue depth at/above which a record counts as
	// a microburst (default 32; negative disables).
	MicroburstDepth int
	// MaxChanges bounds the retained PathChange ring (default 64).
	MaxChanges int
	// MaxFlows bounds per-flow digest state (default 65536). Beyond it,
	// new flows are aggregated but not change-tracked.
	MaxFlows int
	// Tap, when set, observes every postcard after it is filed — the hook
	// tests and exporters use to see individual postcards, which the
	// Collector itself only retains in aggregate.
	Tap func(pc Postcard)
}

func (c *Config) fill() {
	if c.MicroburstDepth == 0 {
		c.MicroburstDepth = 32
	}
	if c.MaxChanges <= 0 {
		c.MaxChanges = 64
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 65536
	}
}

type flowState struct {
	digest uint64
	hops   []uint32
}

// Collector aggregates postcards. Safe for concurrent use.
type Collector struct {
	cfg Config

	mu    sync.Mutex
	flows map[uint64]*flowState
	links map[uint64]*LinkStat
	hops  map[uint32]*HopStat

	postcards    int64
	overflows    int64
	pathChanges  int64
	loops        int64
	microbursts  int64
	expectedMism int64
	decodeErrors int64
	changes      []PathChange
}

// NewCollector builds a Collector.
func NewCollector(cfg Config) *Collector {
	cfg.fill()
	return &Collector{
		cfg:   cfg,
		flows: map[uint64]*flowState{},
		links: map[uint64]*LinkStat{},
		hops:  map[uint32]*HopStat{},
	}
}

// CountDecodeError records a telemetry region that failed DecodeTel at the
// edge — corruption made visible instead of silently dropped.
func (c *Collector) CountDecodeError() {
	c.mu.Lock()
	c.decodeErrors++
	c.mu.Unlock()
}

// SetTap installs (or replaces) the per-postcard observer after
// construction. The tap runs outside the collector lock, so it may call
// Stats or Changes.
func (c *Collector) SetTap(fn func(Postcard)) {
	c.mu.Lock()
	c.cfg.Tap = fn
	c.mu.Unlock()
}

// Add files one postcard.
func (c *Collector) Add(pc Postcard) {
	c.add(pc)
	c.mu.Lock()
	tap := c.cfg.Tap
	c.mu.Unlock()
	if tap != nil {
		tap(pc)
	}
}

func (c *Collector) add(pc Postcard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.postcards++
	if pc.Overflow {
		c.overflows++
	}

	looped := false
	for i := range pc.Hops {
		r := &pc.Hops[i]
		c.hopStatLocked(r.HopID).fold(r, c.cfg.MicroburstDepth)
		if c.cfg.MicroburstDepth >= 0 && int(r.QueueDepth) >= c.cfg.MicroburstDepth {
			c.microbursts++
		}
		for j := 0; j < i; j++ {
			if pc.Hops[j].HopID == r.HopID {
				looped = true
			}
		}
		if i > 0 {
			c.linkStatLocked(pc.Hops[i-1].HopID, r.HopID).fold(&pc.Hops[i-1], r)
		}
	}
	if looped {
		c.loops++
	}

	// An overflowed postcard carries a truncated prefix of the real path:
	// comparing its digest against a full path would report phantom
	// changes, so flow tracking and the expected-path check skip it.
	if pc.Overflow {
		return
	}

	if c.cfg.Expected != nil {
		if want, ok := c.cfg.Expected(&pc); ok && !sameIDs(want, pc.Hops) {
			c.expectedMism++
		}
	}

	d := Digest(pc.Hops)
	fs := c.flows[pc.Flow]
	if fs == nil {
		if len(c.flows) >= c.cfg.MaxFlows {
			return
		}
		c.flows[pc.Flow] = &flowState{digest: d, hops: hopIDs(pc.Hops)}
		return
	}
	if fs.digest == d {
		return
	}
	ch := PathChange{
		Flow:      pc.Flow,
		At:        pc.At,
		OldHops:   fs.hops,
		NewHops:   hopIDs(pc.Hops),
		OldDigest: fs.digest,
		NewDigest: d,
	}
	c.pathChanges++
	c.changes = append(c.changes, ch)
	if n := len(c.changes) - c.cfg.MaxChanges; n > 0 {
		c.changes = append(c.changes[:0], c.changes[n:]...)
	}
	fs.digest = d
	fs.hops = ch.NewHops
}

func hopIDs(hops []extops.HopRecord) []uint32 {
	out := make([]uint32, len(hops))
	for i := range hops {
		out[i] = hops[i].HopID
	}
	return out
}

func sameIDs(want []uint32, hops []extops.HopRecord) bool {
	if len(want) != len(hops) {
		return false
	}
	for i := range want {
		if want[i] != hops[i].HopID {
			return false
		}
	}
	return true
}

func (c *Collector) hopStatLocked(id uint32) *HopStat {
	hs := c.hops[id]
	if hs == nil {
		hs = &HopStat{HopID: id}
		if c.cfg.HopName != nil {
			hs.Name = c.cfg.HopName(id)
		}
		c.hops[id] = hs
	}
	return hs
}

func (hs *HopStat) fold(r *extops.HopRecord, microburstAt int) {
	hs.Count++
	hs.LatSumNs += int64(r.LatencyNs)
	hs.LatHist[bucketOf(int64(r.LatencyNs))]++
	hs.QueueSum += int64(r.QueueDepth)
	if int(r.QueueDepth) > hs.QueueMax {
		hs.QueueMax = int(r.QueueDepth)
	}
	if r.Congested() {
		hs.Congested++
	}
	if microburstAt >= 0 && int(r.QueueDepth) >= microburstAt {
		hs.Microbursts++
	}
}

func (c *Collector) linkStatLocked(a, b uint32) *LinkStat {
	key := uint64(a)<<32 | uint64(b)
	ls := c.links[key]
	if ls == nil {
		ls = &LinkStat{From: a, To: b}
		if c.cfg.HopName != nil {
			ls.FromName, ls.ToName = c.cfg.HopName(a), c.cfg.HopName(b)
		}
		c.links[key] = ls
	}
	return ls
}

func (ls *LinkStat) fold(a, b *extops.HopRecord) {
	// Timestamps are µs truncated to 32 bits; unsigned subtraction stays
	// correct across the wrap.
	ns := int64(b.TimestampUs-a.TimestampUs) * 1000
	ls.Count++
	ls.SumNs += ns
	ls.Hist[bucketOf(ns)]++
}

func bucketOf(ns int64) int {
	b := 0
	for ns > 1 && b < telemetry.HistBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// Stats snapshots the collector.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Postcards:        c.postcards,
		Overflows:        c.overflows,
		Flows:            len(c.flows),
		PathChanges:      c.pathChanges,
		Loops:            c.loops,
		Microbursts:      c.microbursts,
		ExpectedMismatch: c.expectedMism,
		DecodeErrors:     c.decodeErrors,
	}
	for _, ls := range c.links {
		st.Links = append(st.Links, *ls)
	}
	sort.Slice(st.Links, func(i, j int) bool {
		if st.Links[i].From != st.Links[j].From {
			return st.Links[i].From < st.Links[j].From
		}
		return st.Links[i].To < st.Links[j].To
	})
	for _, hs := range c.hops {
		st.Hops = append(st.Hops, *hs)
	}
	sort.Slice(st.Hops, func(i, j int) bool { return st.Hops[i].HopID < st.Hops[j].HopID })
	st.Changes = append([]PathChange(nil), c.changes...)
	return st
}

// Changes returns the retained path-change ring, oldest first.
func (c *Collector) Changes() []PathChange {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PathChange(nil), c.changes...)
}
