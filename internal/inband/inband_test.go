package inband

import (
	"testing"

	"dip/internal/extops"
)

func hops(ids ...uint32) []extops.HopRecord {
	out := make([]extops.HopRecord, len(ids))
	for i, id := range ids {
		out[i] = extops.HopRecord{HopID: id}
	}
	return out
}

func TestDigestOrderSensitive(t *testing.T) {
	a := Digest(hops(1, 2, 3))
	b := Digest(hops(3, 2, 1))
	if a == b {
		t.Error("digest ignores hop order")
	}
	if Digest(hops(1, 2, 3)) != a {
		t.Error("digest not deterministic")
	}
	if Digest(nil) == a {
		t.Error("empty path digests like a 3-hop path")
	}
}

func TestPathChangeDetection(t *testing.T) {
	c := NewCollector(Config{})
	for i := 0; i < 5; i++ {
		c.Add(Postcard{Flow: 1, At: int64(i), Hops: hops(1, 2, 4)})
	}
	st := c.Stats()
	if st.PathChanges != 0 {
		t.Fatalf("quiescent flow reported %d changes", st.PathChanges)
	}
	c.Add(Postcard{Flow: 1, At: 100, Hops: hops(1, 3, 4)})
	c.Add(Postcard{Flow: 1, At: 101, Hops: hops(1, 3, 4)})
	st = c.Stats()
	if st.PathChanges != 1 || len(st.Changes) != 1 {
		t.Fatalf("changes=%d ring=%d, want 1/1", st.PathChanges, len(st.Changes))
	}
	ch := st.Changes[0]
	if ch.At != 100 {
		t.Errorf("change at %d, want 100 (first packet on the new path)", ch.At)
	}
	wantOld, wantNew := []uint32{1, 2, 4}, []uint32{1, 3, 4}
	for i := range wantOld {
		if ch.OldHops[i] != wantOld[i] || ch.NewHops[i] != wantNew[i] {
			t.Fatalf("old=%v new=%v", ch.OldHops, ch.NewHops)
		}
	}
	// A second flow on a different path is not a change for the first.
	c.Add(Postcard{Flow: 2, At: 102, Hops: hops(9, 8)})
	if st := c.Stats(); st.PathChanges != 1 || st.Flows != 2 {
		t.Errorf("changes=%d flows=%d", st.PathChanges, st.Flows)
	}
}

func TestOverflowedPostcardNeverFlipsDigest(t *testing.T) {
	c := NewCollector(Config{})
	c.Add(Postcard{Flow: 1, Hops: hops(1, 2, 3)})
	// The same flow arrives with a truncated (overflowed) hop list: the
	// visible prefix differs, but that is slot exhaustion, not a reroute.
	c.Add(Postcard{Flow: 1, Hops: hops(1, 2), Overflow: true})
	st := c.Stats()
	if st.PathChanges != 0 {
		t.Errorf("overflowed postcard reported a path change")
	}
	if st.Overflows != 1 {
		t.Errorf("overflows=%d", st.Overflows)
	}
}

func TestLoopDetection(t *testing.T) {
	c := NewCollector(Config{})
	c.Add(Postcard{Flow: 1, Hops: hops(1, 2, 1, 2)})
	c.Add(Postcard{Flow: 2, Hops: hops(1, 2, 3)})
	if st := c.Stats(); st.Loops != 1 {
		t.Errorf("loops=%d, want 1", st.Loops)
	}
}

func TestExpectedPathCrossCheck(t *testing.T) {
	want := []uint32{1, 2}
	c := NewCollector(Config{
		Expected: func(pc *Postcard) ([]uint32, bool) { return want, true },
	})
	c.Add(Postcard{Flow: 1, Hops: hops(1, 2)})
	c.Add(Postcard{Flow: 1, Hops: hops(1, 3)})
	if st := c.Stats(); st.ExpectedMismatch != 1 {
		t.Errorf("mismatches=%d, want 1", st.ExpectedMismatch)
	}
}

func TestLinkAndHopAggregation(t *testing.T) {
	c := NewCollector(Config{
		MicroburstDepth: 10,
		HopName:         func(id uint32) string { return string(rune('A' + id - 1)) },
	})
	pc := Postcard{Flow: 1, Hops: []extops.HopRecord{
		{HopID: 1, TimestampUs: 1000, LatencyNs: 500, QueueDepth: 2},
		{HopID: 2, TimestampUs: 4000, LatencyNs: 700, QueueDepth: 15, Flags: extops.TelFlagCongested},
	}}
	c.Add(pc)
	st := c.Stats()
	if len(st.Links) != 1 || len(st.Hops) != 2 {
		t.Fatalf("links=%d hops=%d", len(st.Links), len(st.Hops))
	}
	l := st.Links[0]
	if l.From != 1 || l.To != 2 || l.FromName != "A" || l.ToName != "B" {
		t.Errorf("link %+v", l)
	}
	if l.SumNs != 3_000_000 { // 3000 µs timestamp delta
		t.Errorf("link latency sum %d ns, want 3ms", l.SumNs)
	}
	h2 := st.Hops[1]
	if h2.LatSumNs != 700 || h2.QueueMax != 15 || h2.Congested != 1 || h2.Microbursts != 1 {
		t.Errorf("hop stat %+v", h2)
	}
	if st.Microbursts != 1 {
		t.Errorf("global microbursts=%d", st.Microbursts)
	}
}

func TestChangeRingBounded(t *testing.T) {
	c := NewCollector(Config{MaxChanges: 2})
	path := 0
	for i := 0; i < 6; i++ {
		// Alternate paths so every postcard after the first is a change.
		var h []extops.HopRecord
		if path = 1 - path; path == 0 {
			h = hops(1, 2)
		} else {
			h = hops(1, 3)
		}
		c.Add(Postcard{Flow: 7, At: int64(i), Hops: h})
	}
	st := c.Stats()
	if st.PathChanges != 5 {
		t.Errorf("changes=%d, want 5", st.PathChanges)
	}
	if len(st.Changes) != 2 {
		t.Fatalf("ring=%d, want 2", len(st.Changes))
	}
	if st.Changes[0].At != 4 || st.Changes[1].At != 5 {
		t.Errorf("ring keeps %d,%d — want the most recent (4,5)", st.Changes[0].At, st.Changes[1].At)
	}
}

func TestFlowOf(t *testing.T) {
	locs := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	full := FlowOf(locs, -1)
	prefix := FlowOf(locs, 4)
	if full == prefix {
		t.Error("prefix hash equals full hash")
	}
	// The tel region mutating must not change the flow key.
	mutated := append([]byte(nil), locs...)
	mutated[6] = 0xFF
	if FlowOf(mutated, 4) != prefix {
		t.Error("flow key depends on bytes past the telemetry offset")
	}
}
