#!/usr/bin/env python3
"""benchmerge: merge repeated dipbench -json runs into one artifact.

Usage: scripts/benchmerge.py out.json run1.json run2.json [...]

For every benchmark name, keeps the record with the smallest ns_per_op
across the input runs (benchstat-style min-merging). CPU contention from
noisy neighbors only ever inflates a row, never deflates it, so the
per-row minimum across several runs is the best available estimate of
the uncontended cost. Rows are written in the order the first run
produced them so diffs against single-run artifacts stay readable.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out, runs = sys.argv[1], sys.argv[2:]
    best: dict[str, dict] = {}
    order: list[str] = []
    for path in runs:
        with open(path) as f:
            records = json.load(f)
        for rec in records:
            name = rec["name"]
            if name not in best:
                best[name] = rec
                order.append(name)
            elif rec["ns_per_op"] < best[name]["ns_per_op"]:
                best[name] = rec
    with open(out, "w") as f:
        json.dump([best[name] for name in order], f, indent=2)
        f.write("\n")
    print(f"benchmerge: {len(order)} records from {len(runs)} runs -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
