#!/bin/sh
# benchguard: fail when the current benchmark records regress against the
# previous PR's baseline. Compares ns_per_op for every benchmark name both
# files share (the burst-era BENCH_6.json overlaps BENCH_5.json on the
# fig2/ forwarding rows and the fiblookup/ ablation) and exits nonzero when
# any hot-path row slows down by more than the tolerance. Additionally
# gates the multicore burst experiment within the new file: the batched
# dataplane must sustain at least MINSPEED x the batch=1 packet rate at
# the highest GOMAXPROCS measured.
#
# Usage: scripts/benchguard.sh [new.json] [old.json] [tolerance-%] [min-speedup] [max-churn-jitter]
set -eu

NEW=${1:-BENCH_10.json}
OLD=${2:-BENCH_9.json}
TOL=${3:-15}
MINSPEED=${4:-1.5}

[ -f "$NEW" ] || { echo "benchguard: missing $NEW (run: go run ./cmd/dipbench -json $NEW)"; exit 1; }
[ -f "$OLD" ] || { echo "benchguard: missing baseline $OLD"; exit 1; }

# Flatten each JSON array to "name ns_per_op" lines. The records are written
# by cmd/dipbench with a fixed field order; parse with python3 for robustness
# (no jq in the image).
flatten() {
	python3 -c '
import json, sys
for r in json.load(open(sys.argv[1])):
    print(r["name"], r["ns_per_op"])
' "$1"
}

flatten "$NEW" | sort > /tmp/benchguard.new.$$
flatten "$OLD" | sort > /tmp/benchguard.old.$$
trap 'rm -f /tmp/benchguard.new.$$ /tmp/benchguard.old.$$' EXIT

# Guard the forwarding hot path (Engine.Process under fig2/) and the FIB
# lookup ablation. The fig2 IPv4/IPv6 -baseline rows are raw ip.Forwarder
# comparators, not DIP code, and at 13-36ns they are too noise-prone to
# gate on; other experiments (mac, pisa, journey) are informational and
# change on purpose as features land.
join /tmp/benchguard.old.$$ /tmp/benchguard.new.$$ | awk -v tol="$TOL" '
$1 ~ /^(fig2|fiblookup)\// && $1 !~ /-baseline\// {
	old = $2; new = $3
	if (old <= 0) next
	delta = (new - old) * 100.0 / old
	printf "  %-32s %10.0fns -> %10.0fns  %+6.1f%%\n", $1, old, new, delta
	if (delta > tol) { bad = bad "\n  REGRESSION " $1 sprintf(" +%.1f%% (tolerance %s%%)", delta, tol) }
	n++
}
END {
	if (n == 0) { print "benchguard: no overlapping hot-path records"; exit 1 }
	if (bad != "") { print bad; exit 1 }
	printf "benchguard: %d hot-path rows within %s%%\n", n, tol
}'

# Gate the batched dataplane's amortization claim (E18): at the highest
# GOMAXPROCS in the burst/ records, batch=64 must be at least MINSPEED
# times faster per packet than batch=1. Skipped when the new file predates
# the burst experiment (no burst/ rows).
python3 -c '
import json, sys
new, minspeed = sys.argv[1], float(sys.argv[2])
rows = {r["name"]: r["ns_per_op"] for r in json.load(open(new))
        if r["name"].startswith("burst/")}
if not rows:
    print("benchguard: no burst/ records in %s; skipping speedup gate" % new)
    sys.exit(0)
gmps = sorted({int(n.rsplit("gmp", 1)[1]) for n in rows})
top = gmps[-1]
b1, b64 = rows["burst/batch1/gmp%d" % top], rows["burst/batch64/gmp%d" % top]
speed = b1 / b64
print("benchguard: burst gmp%d  batch1 %.0fns / batch64 %.0fns = %.2fx (need >= %.2fx)"
      % (top, b1, b64, speed, minspeed))
sys.exit(0 if speed >= minspeed else 1)
' "$NEW" "$MINSPEED"

# Gate the tiered content store's never-block claim (E20): the hot-tier hit
# latency must stay flat as the catalog sweeps past RAM capacity. The
# largest catalog's cstier/.../hotget row may not exceed the smallest
# catalog's by more than the tolerance — if cold-tier bookkeeping ever
# taxed the RAM fast path, this is where it would show. Skipped when the
# new file predates the cstier experiment.
python3 -c '
import json, sys
new, tol = sys.argv[1], float(sys.argv[2])
rows = {}
for r in json.load(open(new)):
    n = r["name"]
    if n.startswith("cstier/cat") and n.endswith("/hotget"):
        rows[int(n[len("cstier/cat"):-len("/hotget")])] = r["ns_per_op"]
if not rows:
    print("benchguard: no cstier/ records in %s; skipping tier gate" % new)
    sys.exit(0)
small, big = min(rows), max(rows)
base, top = rows[small], rows[big]
delta = (top - base) * 100.0 / base if base > 0 else 0.0
# These rows sit near the measurement noise floor (~tens of ns), so the
# percentage tolerance gets a 15ns absolute slack floor — the gate exists
# to catch the hot path picking up per-lookup cold-tier work (hundreds of
# ns of mutex/IO), not scheduler jitter.
limit = max(base * tol / 100.0, 15.0)
print("benchguard: cstier hot hit  cat%d %.0fns -> cat%d %.0fns  %+.1f%% (slack %.0fns)"
      % (small, base, big, top, delta, limit))
sys.exit(0 if top - base <= limit else 1)
' "$NEW" "$TOL"

# Gate the control plane's churn claim (E21): lookups must not degrade
# while the FIB churns. The within-file ratio of storm p99 to quiescent
# p99 lookup latency is capped — the RCU design promises readers never
# block on writers, so churn-time jitter beyond a small multiple means a
# reader started paying for publication (a lock, a torn snapshot, GC
# pressure from unbatched COW garbage). The cap is deliberately loose
# (both p99s sit near the scheduler noise floor); the oracle inside the
# harness already hard-fails a desynchronized run before records are
# written. Skipped when the new file predates the churn experiment.
MAXJITTER=${5:-30}
python3 -c '
import json, sys
new, maxjitter = sys.argv[1], float(sys.argv[2])
rows = {r["name"]: r["ns_per_op"] for r in json.load(open(new))
        if r["name"].startswith("churn/")}
if not rows:
    print("benchguard: no churn/ records in %s; skipping churn gate" % new)
    sys.exit(0)
q, s = rows["churn/lookup/quiesce-p99"], rows["churn/lookup/storm-p99"]
ratio = s / q if q > 0 else 0.0
print("benchguard: churn lookup p99  quiesce %.0fns / storm %.0fns = %.2fx (cap %.0fx)"
      % (q, s, ratio, maxjitter))
sys.exit(0 if ratio <= maxjitter else 1)
' "$NEW" "$MAXJITTER"

# Gate the in-band telemetry stamping claim (E22): an 8-slot F_tel stamp may
# cost at most TOL percent over the unstamped forwarding loop. The int/ rows
# come from the same dipbench run (same machine, same trial count), so the
# within-file ratio is noise-robust; the absolute ns live in the fig2 gate
# above. Skipped when the new file predates the int experiment.
python3 -c '
import json, sys
new, tol = sys.argv[1], float(sys.argv[2])
rows = {r["name"]: r["ns_per_op"] for r in json.load(open(new))
        if r["name"].startswith("int/")}
if not rows:
    print("benchguard: no int/ records in %s; skipping telemetry gate" % new)
    sys.exit(0)
plain, stamped = rows["int/unstamped"], rows["int/stamped8"]
overhead = (stamped - plain) * 100.0 / plain if plain > 0 else 0.0
print("benchguard: F_tel stamp  unstamped %.0fns / stamped8 %.0fns  %+.1f%% (tolerance %.0f%%)"
      % (plain, stamped, overhead, tol))
sys.exit(0 if overhead <= tol else 1)
' "$NEW" "$TOL"
