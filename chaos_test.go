package dip

// Chaos test: end-to-end NDN interest/data exchange over a 3-hop router
// path whose links drop (and corrupt) packets under a seeded fault model.
// The consumer's Fetcher repairs loss by retransmitting interests with
// exponential backoff; router PIT entries expire on short TTLs so
// retransmissions re-arm forwarding state hop by hop. The whole run is
// deterministic: same seed, same fault sequence, same completion times.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dip/internal/host"
	"dip/internal/netsim"
	"dip/internal/pit"
	"dip/internal/telemetry"
)

// chaosOutcome captures everything a chaos run produces, for determinism
// comparison across invocations.
type chaosOutcome struct {
	Stats        FetchStats
	CompletedAt  map[uint32]time.Duration
	LinkDrops    int64
	LinkFaults   int64
	RouterEvents map[string]int64
	Payloads     map[uint32]string
	FinalTime    time.Duration
}

// runChaos fetches nFetch names across C — R1 — R2 — R3 — P with the given
// per-direction loss rate on the two inter-router links (plus a little
// corruption on one), all seeded from seed.
func runChaos(t *testing.T, seed int64, loss float64, nFetch int) chaosOutcome {
	t.Helper()
	sim := netsim.New()
	metrics := []*Metrics{{}, {}, {}}

	// Short PIT TTLs: an expired entry is what lets a retransmitted
	// interest propagate past routers that saw (and aggregated) the lost
	// original.
	routers := make([]*Router, 3)
	pits := make([]*pit.Table[uint32], 3)
	for i := range routers {
		st := NewNodeState().EnableCache(64)
		st.PIT = pit.New[uint32](
			pit.WithTTL[uint32](40*time.Millisecond),
			pit.WithClock[uint32](func() time.Time { return time.Unix(0, 0).Add(sim.Now()) }),
		)
		pits[i] = st.PIT
		st.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
		routers[i] = NewRouter(st.OpsConfig(), RouterOptions{
			Name:    fmt.Sprintf("R%d", i+1),
			Metrics: metrics[i],
		})
	}

	impair := func(s int64, observer *Metrics) *netsim.Impairment {
		im := netsim.NewImpairment(s)
		im.DropProb = loss
		im.Observer = func(e netsim.ImpairEvent) {
			switch e {
			case netsim.ImpairDrop:
				observer.RecordEvent(telemetry.EventLinkDrop)
			case netsim.ImpairCorrupt:
				observer.RecordEvent(telemetry.EventLinkCorrupt)
			}
		}
		return im
	}
	ims := []*netsim.Impairment{
		impair(seed+1, metrics[0]), // R1→R2
		impair(seed+2, metrics[0]), // R2→R1
		impair(seed+3, metrics[1]), // R2→R3
		impair(seed+4, metrics[1]), // R3→R2
	}
	// A pinch of corruption on the R2→R3 direction: corrupted DIP packets
	// must surface as malformed drops, not crashes.
	ims[2].CorruptProb = 0.02

	recv := func(r *Router) netsim.Receiver {
		return netsim.ReceiverFunc(func(pkt []byte, port int) { r.HandlePacket(pkt, port) })
	}
	const hop = time.Millisecond

	// Consumer C.
	outcome := chaosOutcome{
		CompletedAt:  map[uint32]time.Duration{},
		Payloads:     map[uint32]string{},
		RouterEvents: map[string]int64{},
	}
	var fetcher *Fetcher
	consumerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) { fetcher.HandleData(pkt) })

	// Producer P answers every interest in the 0xAA prefix.
	var toR3 *netsim.Endpoint
	producerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := ParsePacket(pkt)
		if err != nil {
			return
		}
		name, ok := host.InterestName(v)
		if !ok {
			return
		}
		reply, err := BuildPacket(NDNDataProfile(name), []byte(fmt.Sprintf("content-%08x", name)))
		if err != nil {
			return
		}
		toR3.Send(reply)
	})

	// Wiring, port 0 then port 1 on each router:
	//   R1: 0 → C,  1 → R2      R2: 0 → R1, 1 → R3      R3: 0 → R2, 1 → P
	toR1 := sim.Pipe(recv(routers[0]), 0, hop, 0)
	routers[0].AttachPort(sim.Pipe(consumerRx, 0, hop, 0))
	routers[0].AttachPort(sim.Pipe(recv(routers[1]), 0, hop, 0, netsim.WithImpairment(ims[0])))
	routers[1].AttachPort(sim.Pipe(recv(routers[0]), 1, hop, 0, netsim.WithImpairment(ims[1])))
	routers[1].AttachPort(sim.Pipe(recv(routers[2]), 0, hop, 0, netsim.WithImpairment(ims[2])))
	routers[2].AttachPort(sim.Pipe(recv(routers[1]), 1, hop, 0, netsim.WithImpairment(ims[3])))
	routers[2].AttachPort(sim.Pipe(producerRx, 0, hop, 0))
	toR3 = sim.Pipe(recv(routers[2]), 1, hop, 0)

	fetcher = NewFetcher(sim, func(pkt []byte) { toR1.Send(pkt) }, FetchConfig{
		Timeout: 60 * time.Millisecond,
		Backoff: 2,
		MaxRetx: 8,
		Metrics: metrics[0],
	})
	fetcher.OnComplete = func(name uint32, payload []byte) {
		outcome.CompletedAt[name] = sim.Now()
		outcome.Payloads[name] = string(payload)
	}

	// PIT sweepers keep abandoned entries from pinning router state.
	for i, p := range pits {
		m := metrics[i]
		cancel := p.SweepEvery(sim, 50*time.Millisecond, func(n int) {
			for j := 0; j < n; j++ {
				m.RecordEvent(telemetry.EventPITExpired)
			}
		})
		defer cancel()
	}

	for i := 0; i < nFetch; i++ {
		name := uint32(0xAA000000 + i)
		sim.Schedule(time.Duration(i)*5*time.Millisecond, func() { fetcher.Fetch(name) })
	}
	// Sweepers reschedule forever; drain by horizon, far past any retx.
	sim.RunUntil(20 * time.Second)

	outcome.Stats = fetcher.Stats()
	outcome.FinalTime = sim.Now()
	for i, m := range metrics {
		s := m.Snapshot()
		for e, n := range s.Events {
			outcome.RouterEvents[fmt.Sprintf("R%d/%s", i+1, e)] += n
		}
	}
	for _, im := range ims {
		outcome.LinkDrops += im.Drops
		outcome.LinkFaults += im.Faults()
	}
	return outcome
}

func TestChaosLossyPathRecoversByRetransmission(t *testing.T) {
	const seed, loss, n = 2024, 0.10, 30
	out := runChaos(t, seed, loss, n)

	if out.Stats.Completed != n || len(out.CompletedAt) != n {
		t.Fatalf("completed %d/%d fetches (dead-lettered %d, pending %d)",
			out.Stats.Completed, n, out.Stats.DeadLettered, out.Stats.Pending)
	}
	if out.Stats.DeadLettered != 0 {
		t.Errorf("dead letters at 10%% loss with retx cap 8: %d", out.Stats.DeadLettered)
	}
	if out.Stats.Retransmits == 0 {
		t.Error("no retransmissions at 10% loss — recovery machinery never engaged")
	}
	// Bounded recovery: retransmissions cannot exceed the per-name cap.
	if max := int64(n * 8); out.Stats.Retransmits > max {
		t.Errorf("retransmits %d exceed cap %d", out.Stats.Retransmits, max)
	}
	if out.LinkDrops == 0 {
		t.Error("impaired links dropped nothing — fault injection never engaged")
	}
	for name, payload := range out.Payloads {
		if want := fmt.Sprintf("content-%08x", name); payload != want {
			t.Errorf("name %#x delivered %q, want %q", name, payload, want)
		}
	}
	// Degradation is observable: telemetry saw the link faults and the
	// consumer's retransmissions.
	if out.RouterEvents["R1/link-drop"] == 0 {
		t.Errorf("telemetry missed link drops: %v", out.RouterEvents)
	}
	if out.RouterEvents["R1/retransmit"] != out.Stats.Retransmits {
		t.Errorf("telemetry retransmits %d != fetcher's %d",
			out.RouterEvents["R1/retransmit"], out.Stats.Retransmits)
	}

	// Acceptance: the seeded run is deterministic across invocations —
	// identical completion times, counters, fault totals, and telemetry.
	again := runChaos(t, seed, loss, n)
	if !reflect.DeepEqual(out, again) {
		t.Fatalf("chaos run not deterministic:\n run1: %+v\n run2: %+v", out, again)
	}
	// And a different seed shifts the fault sequence (the RNG is real).
	other := runChaos(t, seed+1000, loss, n)
	if reflect.DeepEqual(out.CompletedAt, other.CompletedAt) {
		t.Error("different seeds produced identical completion schedules")
	}

	t.Logf("chaos: %d fetches, %d retransmits, %d link drops, %d total faults, done at %v",
		n, out.Stats.Retransmits, out.LinkDrops, out.LinkFaults, out.FinalTime)
}

// Higher loss plus duplication and reordering: recovery still converges,
// and duplicate data never double-completes a fetch.
func TestChaosHeavyImpairmentStillConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	sim := netsim.New()
	st := NewNodeState()
	st.PIT = pit.New[uint32](
		pit.WithTTL[uint32](40*time.Millisecond),
		pit.WithClock[uint32](func() time.Time { return time.Unix(0, 0).Add(sim.Now()) }),
	)
	st.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	r := NewRouter(st.OpsConfig(), RouterOptions{})

	im := netsim.NewImpairment(77)
	im.DropProb = 0.20
	im.DupProb = 0.10
	im.ReorderProb = 0.10
	im.ReorderDelay = 3 * time.Millisecond
	imBack := netsim.NewImpairment(78)
	imBack.DropProb = 0.20
	imBack.DupProb = 0.10

	var fetcher *Fetcher
	completions := map[uint32]int{}
	consumerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		if name, ok := fetcher.HandleData(pkt); ok {
			completions[name]++
		}
	})
	var toRouter *netsim.Endpoint
	producerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := ParsePacket(pkt)
		if err != nil {
			return
		}
		if name, ok := host.InterestName(v); ok {
			if reply, err := BuildPacket(NDNDataProfile(name), []byte("d")); err == nil {
				toRouter.Send(reply)
			}
		}
	})
	rRecv := netsim.ReceiverFunc(func(pkt []byte, port int) { r.HandlePacket(pkt, port) })
	toRouterLossy := sim.Pipe(rRecv, 0, time.Millisecond, 0, netsim.WithImpairment(im))
	r.AttachPort(sim.Pipe(consumerRx, 0, time.Millisecond, 0, netsim.WithImpairment(imBack)))
	r.AttachPort(sim.Pipe(producerRx, 0, time.Millisecond, 0))
	toRouter = sim.Pipe(rRecv, 1, time.Millisecond, 0)

	fetcher = NewFetcher(sim, func(pkt []byte) { toRouterLossy.Send(pkt) }, FetchConfig{
		Timeout: 60 * time.Millisecond, MaxRetx: 10,
	})
	const n = 40
	for i := 0; i < n; i++ {
		name := uint32(0xAA000100 + i)
		sim.Schedule(time.Duration(i)*3*time.Millisecond, func() { fetcher.Fetch(name) })
	}
	sim.Run()

	st2 := fetcher.Stats()
	if st2.Completed != n || st2.DeadLettered != 0 {
		t.Fatalf("completed %d/%d, dead-lettered %d", st2.Completed, n, st2.DeadLettered)
	}
	if st2.Retransmits == 0 {
		t.Error("no retransmissions under 20% loss")
	}
	for name, c := range completions {
		if c != 1 {
			t.Errorf("name %#x completed %d times (duplicate data double-satisfied)", name, c)
		}
	}
}
