GO ?= go

.PHONY: build test check race vet fuzz soak bench benchrace metricssmoke journeysmoke burstsmoke benchguard clean

build:
	$(GO) build ./...

# Fast tier-1 gate: what CI runs on every push.
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: static analysis, the race detector, a race-mode smoke
# of the parallel hot-path benchmarks, a fuzz smoke sweep over every fuzz
# target, a live scrape of the metrics endpoint, and a smoke of the batched
# dataplane (ordering/zero-alloc tests plus a short scaling run).
check: vet race benchrace fuzz metricssmoke journeysmoke burstsmoke

# Short benchstat-friendly run of the forwarding hot-path benchmarks
# (compare runs with: make bench > old.txt; ...; make bench > new.txt;
# benchstat old.txt new.txt). Longer runs: make bench BENCHTIME=2s.
BENCHTIME ?= 100ms
bench:
	$(GO) test -run '^$$' -bench 'FIBLookup|FIBTxnCommit|ShardedPIT|PITSequential' \
		-benchtime $(BENCHTIME) -count 5 ./internal/fib/ ./internal/pit/
	$(GO) test -run '^$$' -bench 'Fig2|Ablation_FIBScale|ZeroAlloc' \
		-benchtime $(BENCHTIME) -count 5 .

# Race-mode smoke of the concurrent benchmarks: a handful of iterations is
# enough for the detector to see lock-free lookups racing route churn and
# sharded tables racing each other.
benchrace:
	$(GO) test -race -run '^$$' -bench 'FIBLookupParallel|ShardedPITParallel' \
		-benchtime 50x -count 1 ./internal/fib/ ./internal/pit/

# Smoke sweep over every fuzz target in the tree, discovered with `go test
# -list` so new fuzzers join automatically (longer runs: make fuzz
# FUZZTIME=5m).
FUZZTIME ?= 5s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "== fuzz $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# Metrics-endpoint smoke: boot a real diprouter with the observability
# listener, push traffic through it with diphost (one routable packet, one
# no-route drop), scrape /metrics, validate the Prometheus text grammar,
# check the key series exist, and make sure pprof answers.
METRICS_PORT ?= 17490
metricssmoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/diprouter ./cmd/diprouter; \
	$(GO) build -o $$tmp/diphost ./cmd/diphost; \
	$$tmp/diprouter -listen 127.0.0.1:17400 -peer 127.0.0.1:17401 \
		-route32 10.0.0.0/8=0 -cache 16 \
		-metrics-addr 127.0.0.1:$(METRICS_PORT) -trace-every 1 \
		>$$tmp/router.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/diphost -mode send -proto ipv4 -src 1.1.1.1 -dst 10.0.0.9 \
		-to 127.0.0.1:17400 -payload smoke >/dev/null; \
	$$tmp/diphost -mode send -proto ipv4 -src 1.1.1.1 -dst 99.9.9.9 \
		-to 127.0.0.1:17400 >/dev/null; \
	sleep 0.3; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/metrics > $$tmp/scrape; \
	awk '!/^#/ && !/^$$/ && $$0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$$/ \
		{ print "bad exposition line: " $$0; bad=1 } END { exit bad }' $$tmp/scrape; \
	for s in 'dip_packets_received_total' 'dip_packets_total{.*verdict="forward"' \
		'dip_drops_total{.*reason="no-route"' 'dip_op_latency_ns_bucket{.*op="F_32_match".*le=' \
		'dip_pit_entries' 'dip_cs_entries' 'dip_trace_sampled_total'; do \
		grep -q "^$$s" $$tmp/scrape || { echo "missing series $$s"; cat $$tmp/scrape; exit 1; }; \
	done; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/trace >/dev/null; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/debug/pprof/ >/dev/null; \
	echo "metricssmoke: exposition valid, key series present, pprof live"

# Journey-stitching smoke: run the canned 3-hop scenario with journey
# tracing on and check the collector stitched at least one complete journey
# that crossed all three routers, end to end, with the expected hop count.
journeysmoke:
	@set -e; \
	out=$$($(GO) run ./cmd/diptopo -q -journeys testdata/journey3hop.topo); \
	echo "$$out" | grep -q 'routers=3 complete=true' \
		|| { echo "journeysmoke: no complete 3-router journey"; echo "$$out"; exit 1; }; \
	n=$$(echo "$$out" | grep -c 'routers=3 complete=true'); \
	echo "journeysmoke: $$n complete 3-hop journeys stitched"

# Batched-dataplane smoke: the flow-pinning ordering property, burst
# lifecycle/chaos tests, the zero-alloc pins, and a short run of the E18
# multicore scaling experiment (full version: make benchguard after
# regenerating BENCH_6.json).
burstsmoke:
	$(GO) test -run 'FlowPinning|FlowDispatch|Burst' ./internal/router/ .
	@set -e; out=$$($(GO) run ./cmd/dipbench -experiment burst -rounds 5); \
	echo "$$out"; echo "$$out" | grep -q 'speedup' \
		|| { echo "burstsmoke: scaling run produced no speedup line"; exit 1; }

# Hot-path benchmark regression gate: compare this PR's dipbench records
# against the previous baseline (see scripts/benchguard.sh for knobs).
benchguard:
	sh scripts/benchguard.sh BENCH_6.json BENCH_5.json 15

# Long-running soak and heavy-chaos tests are skipped under -short; this
# target runs everything, including them.
soak:
	$(GO) test -race -count=1 ./...

clean:
	$(GO) clean ./...
