GO ?= go

.PHONY: build test check race vet fuzz soak bench benchrace clean

build:
	$(GO) build ./...

# Fast tier-1 gate: what CI runs on every push.
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: static analysis, the race detector, a race-mode smoke
# of the parallel hot-path benchmarks, and a fuzz smoke sweep over every
# fuzz target.
check: vet race benchrace fuzz

# Short benchstat-friendly run of the forwarding hot-path benchmarks
# (compare runs with: make bench > old.txt; ...; make bench > new.txt;
# benchstat old.txt new.txt). Longer runs: make bench BENCHTIME=2s.
BENCHTIME ?= 100ms
bench:
	$(GO) test -run '^$$' -bench 'FIBLookup|FIBTxnCommit|ShardedPIT|PITSequential' \
		-benchtime $(BENCHTIME) -count 5 ./internal/fib/ ./internal/pit/
	$(GO) test -run '^$$' -bench 'Fig2|Ablation_FIBScale|ZeroAlloc' \
		-benchtime $(BENCHTIME) -count 5 .

# Race-mode smoke of the concurrent benchmarks: a handful of iterations is
# enough for the detector to see lock-free lookups racing route churn and
# sharded tables racing each other.
benchrace:
	$(GO) test -race -run '^$$' -bench 'FIBLookupParallel|ShardedPITParallel' \
		-benchtime 50x -count 1 ./internal/fib/ ./internal/pit/

# Smoke sweep over every fuzz target in the tree, discovered with `go test
# -list` so new fuzzers join automatically (longer runs: make fuzz
# FUZZTIME=5m).
FUZZTIME ?= 5s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "== fuzz $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# Long-running soak and heavy-chaos tests are skipped under -short; this
# target runs everything, including them.
soak:
	$(GO) test -race -count=1 ./...

clean:
	$(GO) clean ./...
