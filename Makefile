GO ?= go

.PHONY: build test check race vet fuzz soak clean

build:
	$(GO) build ./...

# Fast tier-1 gate: what CI runs on every push.
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: static analysis, the race detector, and a fuzz smoke
# sweep over every fuzz target.
check: vet race fuzz

# Smoke sweep over every fuzz target in the tree, discovered with `go test
# -list` so new fuzzers join automatically (longer runs: make fuzz
# FUZZTIME=5m).
FUZZTIME ?= 5s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "== fuzz $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# Long-running soak and heavy-chaos tests are skipped under -short; this
# target runs everything, including them.
soak:
	$(GO) test -race -count=1 ./...

clean:
	$(GO) clean ./...
