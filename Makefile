GO ?= go

.PHONY: build test check race vet fuzz soak bench benchrace metricssmoke journeysmoke burstsmoke ccsmoke cssmoke churnsmoke intsmoke benchguard clean

build:
	$(GO) build ./...

# Fast tier-1 gate: what CI runs on every push.
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: static analysis, the race detector, a race-mode smoke
# of the parallel hot-path benchmarks, a fuzz smoke sweep over every fuzz
# target, a live scrape of the metrics endpoint, a smoke of the batched
# dataplane (ordering/zero-alloc tests plus a short scaling run), the
# congestion-control smoke (fleet fairness + chaos acceptance + E19 row),
# the tiered content-store smoke (never-block acceptance + E20 sweep), the
# control-plane smoke (route-exchange reconvergence scenarios + a
# scaled-down E21 churn run with its built-in oracle), and the in-band
# telemetry smoke (digest oracles + live dip_int_* scrape).
check: vet race benchrace fuzz metricssmoke journeysmoke burstsmoke ccsmoke cssmoke churnsmoke intsmoke

# Short benchstat-friendly run of the forwarding hot-path benchmarks
# (compare runs with: make bench > old.txt; ...; make bench > new.txt;
# benchstat old.txt new.txt). Longer runs: make bench BENCHTIME=2s.
BENCHTIME ?= 100ms
bench:
	$(GO) test -run '^$$' -bench 'FIBLookup|FIBTxnCommit|ShardedPIT|PITSequential' \
		-benchtime $(BENCHTIME) -count 5 ./internal/fib/ ./internal/pit/
	$(GO) test -run '^$$' -bench 'Fig2|Ablation_FIBScale|ZeroAlloc' \
		-benchtime $(BENCHTIME) -count 5 .

# Race-mode smoke of the concurrent benchmarks: a handful of iterations is
# enough for the detector to see lock-free lookups racing route churn and
# sharded tables racing each other.
benchrace:
	$(GO) test -race -run '^$$' -bench 'FIBLookupParallel|ShardedPITParallel' \
		-benchtime 50x -count 1 ./internal/fib/ ./internal/pit/

# Smoke sweep over every fuzz target in the tree, discovered with `go test
# -list` so new fuzzers join automatically (longer runs: make fuzz
# FUZZTIME=5m).
FUZZTIME ?= 5s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz' || true); do \
			echo "== fuzz $$pkg $$f ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# Metrics-endpoint smoke: boot a real diprouter with the observability
# listener, push traffic through it with diphost (one routable packet, one
# no-route drop), scrape /metrics, validate the Prometheus text grammar,
# check the key series exist, and make sure pprof answers. Then run a
# congestion-controlled fetch against the router (whose interests have no
# NDN route, so they retransmit and dead-letter) and assert the fetcher's
# own dip_fetch_* series are present and counting.
METRICS_PORT ?= 17490
FETCH_METRICS_PORT ?= 17491
metricssmoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid $$fpid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/diprouter ./cmd/diprouter; \
	$(GO) build -o $$tmp/diphost ./cmd/diphost; \
	$$tmp/diprouter -listen 127.0.0.1:17400 -peer 127.0.0.1:17401 \
		-route32 10.0.0.0/8=0 -cache 16 \
		-metrics-addr 127.0.0.1:$(METRICS_PORT) -trace-every 1 \
		>$$tmp/router.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/diphost -mode send -proto ipv4 -src 1.1.1.1 -dst 10.0.0.9 \
		-to 127.0.0.1:17400 -payload smoke >/dev/null; \
	$$tmp/diphost -mode send -proto ipv4 -src 1.1.1.1 -dst 99.9.9.9 \
		-to 127.0.0.1:17400 >/dev/null; \
	sleep 0.3; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/metrics > $$tmp/scrape; \
	awk '!/^#/ && !/^$$/ && $$0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$$/ \
		{ print "bad exposition line: " $$0; bad=1 } END { exit bad }' $$tmp/scrape; \
	for s in 'dip_packets_received_total' 'dip_packets_total{.*verdict="forward"' \
		'dip_drops_total{.*reason="no-route"' 'dip_op_latency_ns_bucket{.*op="F_32_match".*le=' \
		'dip_pit_entries' 'dip_cs_entries' 'dip_trace_sampled_total'; do \
		grep -q "^$$s" $$tmp/scrape || { echo "missing series $$s"; cat $$tmp/scrape; exit 1; }; \
	done; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/trace >/dev/null; \
	curl -sf http://127.0.0.1:$(METRICS_PORT)/debug/pprof/ >/dev/null; \
	$$tmp/diphost -mode fetch -name 0xAA000001 -segs 2 -maxretx 2 -init-rto 100ms \
		-to 127.0.0.1:17400 -listen 127.0.0.1:17402 \
		-metrics-addr 127.0.0.1:$(FETCH_METRICS_PORT) -linger 10s \
		>$$tmp/fetch.log 2>&1 & fpid=$$!; \
	sleep 2; \
	curl -sf http://127.0.0.1:$(FETCH_METRICS_PORT)/metrics > $$tmp/fetchscrape; \
	awk '!/^#/ && !/^$$/ && $$0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$$/ \
		{ print "bad exposition line: " $$0; bad=1 } END { exit bad }' $$tmp/fetchscrape; \
	for s in 'dip_fetch_pending' 'dip_fetch_completed_total' 'dip_fetch_cwnd{' \
		'dip_fetch_rto_ns' 'dip_fetch_cwnd_cuts_total'; do \
		grep -q "^$$s" $$tmp/fetchscrape || { echo "missing series $$s"; cat $$tmp/fetchscrape; exit 1; }; \
	done; \
	for s in 'dip_fetch_retransmits_total' 'dip_fetch_deadletter_total'; do \
		grep "^$$s" $$tmp/fetchscrape | awk '{ exit !($$NF > 0) }' \
			|| { echo "series $$s never counted"; cat $$tmp/fetchscrape; exit 1; }; \
	done; \
	echo "metricssmoke: exposition valid, key series present, fetch counters live, pprof live"

# Journey-stitching smoke: run the canned 3-hop scenario with journey
# tracing on and check the collector stitched at least one complete journey
# that crossed all three routers, end to end, with the expected hop count.
journeysmoke:
	@set -e; \
	out=$$($(GO) run ./cmd/diptopo -q -journeys testdata/journey3hop.topo); \
	echo "$$out" | grep -q 'routers=3 complete=true' \
		|| { echo "journeysmoke: no complete 3-router journey"; echo "$$out"; exit 1; }; \
	n=$$(echo "$$out" | grep -c 'routers=3 complete=true'); \
	echo "journeysmoke: $$n complete 3-hop journeys stitched"

# Batched-dataplane smoke: the flow-pinning ordering property, burst
# lifecycle/chaos tests, the zero-alloc pins, and a short run of the E18
# multicore scaling experiment (full version: make benchguard after
# regenerating BENCH_6.json).
burstsmoke:
	$(GO) test -run 'FlowPinning|FlowDispatch|Burst' ./internal/router/ .
	@set -e; out=$$($(GO) run ./cmd/dipbench -experiment burst -rounds 5); \
	echo "$$out"; echo "$$out" | grep -q 'speedup' \
		|| { echo "burstsmoke: scaling run produced no speedup line"; exit 1; }

# Congestion-control smoke: the fleet smoke (every object completes, zero
# dead letters, Jain >= 0.9), the chaos acceptance tests (adaptive beats
# blind through a seeded loss window; journeys attribute the latency;
# flight recorder captures cwnd cuts; deterministic), and one E19 fleet
# run, checking the adaptive row reports goodput.
ccsmoke:
	$(GO) test -run 'TestFleetCCSmoke|TestFleetAdaptiveBeatsBlind|TestCCChaos' ./internal/workload/ .
	@set -e; out=$$($(GO) run ./cmd/dipbench -experiment fetchcc); \
	echo "$$out"; echo "$$out" | grep -q '^  aimd .*bps' \
		|| { echo "ccsmoke: E19 run produced no aimd goodput row"; exit 1; }

# Tiered content-store smoke: the arena/tier unit + race tests, the
# never-block acceptance pins (cold read gated in flight while the hot
# path keeps serving; interest aggregation; zero-alloc hot hit; metrics
# surface), the cscold= DSL scenario, and a short E20 catalog sweep
# checking per-tier hit ratios shift while hot latency holds.
cssmoke:
	$(GO) test ./internal/cs/
	$(GO) test -run 'TestColdReadNeverBlocksForwarder|TestColdInterestAggregation|TestTieredMetricsExported|TestZeroAllocTieredHotHit' .
	$(GO) test -run 'TestColdTierScenario' ./internal/topo/
	@set -e; out=$$($(GO) run ./cmd/dipbench -experiment cstier -trials 200 -rounds 5); \
	echo "$$out"; echo "$$out" | grep -q '^  65536 ' \
		|| { echo "cssmoke: E20 sweep missing the 16x catalog row"; exit 1; }

# Control-plane smoke: the route-exchange convergence and fault scenarios
# (link kill -> triggered-withdraw reconvergence; silent death -> hold-timer
# recovery), the churn package's race-exercised harness tests, and a
# scaled-down E21 churn run — the run hard-fails if the harness's oracle
# finds the tables desynchronized from the storm bookkeeping.
churnsmoke:
	$(GO) test -run 'TestSpeakers|TestLinkKill|TestSilentLinkDeath|TestLinkUp' ./internal/topo/
	$(GO) test -race -short ./internal/churn/ ./internal/bootstrap/
	@set -e; out=$$($(GO) run ./cmd/dipbench -experiment churn -churn-scale 0.02); \
	echo "$$out"; echo "$$out" | grep -q 'jitter ratio' \
		|| { echo "churnsmoke: churn run produced no jitter line"; exit 1; }

# In-band telemetry smoke: the topo-level oracles (every delivered packet's
# hop digest equals the FIB-dictated path; diamond reconvergence attributed
# with the exact old/new hop sequences; INT↔journey cross-correlation), a
# diptopo run of the int= scenario checking the collector summary and the
# per-link heatmap render, then a live diprouter with -int-every: a
# telemetry-stamped packet is pushed through it (diphost -tel) and the
# scrape must carry the dip_int_* families plus a counting F_tel op series.
INT_METRICS_PORT ?= 17492
intsmoke:
	$(GO) test -run 'TestINT' ./internal/topo/
	@set -e; out=$$($(GO) run ./cmd/diptopo -q testdata/int3hop.topo); \
	echo "$$out" | grep -q 'in-band telemetry: postcards=5 overflows=0 flows=3 changes=0 loops=0' \
		|| { echo "intsmoke: collector summary wrong"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q 'link latency heatmap' \
		|| { echo "intsmoke: no heatmap"; echo "$$out"; exit 1; }; \
	echo "intsmoke: digests match, heatmap rendered"
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/diprouter ./cmd/diprouter; \
	$(GO) build -o $$tmp/diphost ./cmd/diphost; \
	$$tmp/diprouter -listen 127.0.0.1:17410 -peer 127.0.0.1:17411 \
		-route32 10.0.0.0/8=0 -int-every 1 -int-slots 8 \
		-metrics-addr 127.0.0.1:$(INT_METRICS_PORT) \
		>$$tmp/router.log 2>&1 & pid=$$!; \
	sleep 1; \
	$$tmp/diphost -mode send -proto ipv4 -src 1.1.1.1 -dst 10.0.0.9 \
		-to 127.0.0.1:17410 -tel 8 -payload intsmoke >/dev/null; \
	sleep 0.3; \
	curl -sf http://127.0.0.1:$(INT_METRICS_PORT)/metrics > $$tmp/scrape; \
	for s in 'dip_int_postcards_total' 'dip_int_path_changes_total' \
		'dip_int_loops_total' 'dip_int_expected_mismatch_total'; do \
		grep -q "^$$s" $$tmp/scrape || { echo "missing series $$s"; cat $$tmp/scrape; exit 1; }; \
	done; \
	grep '^dip_op_latency_ns_count{.*op="F_tel"' $$tmp/scrape | awk '{ exit !($$NF > 0) }' \
		|| { echo "F_tel never executed on the live router"; cat $$tmp/scrape; exit 1; }; \
	echo "intsmoke: dip_int_* families live, F_tel stamping on the wire path"

# Hot-path benchmark regression gate: compare this PR's dipbench records
# against the previous baseline (see scripts/benchguard.sh for knobs).
benchguard:
	sh scripts/benchguard.sh BENCH_10.json BENCH_9.json 15

# Long-running soak and heavy-chaos tests are skipped under -short; this
# target runs everything, including them.
soak:
	$(GO) test -race -count=1 ./...

clean:
	$(GO) clean ./...
