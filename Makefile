GO ?= go

.PHONY: build test check race vet fuzz soak clean

build:
	$(GO) build ./...

# Fast tier-1 gate: what CI runs on every push.
test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: static analysis plus the race detector.
check: vet race

# Short burst of the tunnel decap fuzzer (longer runs: make fuzz FUZZTIME=5m).
FUZZTIME ?= 15s
fuzz:
	$(GO) test ./internal/tunnel/ -run '^$$' -fuzz FuzzDecap -fuzztime $(FUZZTIME)

# Long-running soak and heavy-chaos tests are skipped under -short; this
# target runs everything, including them.
soak:
	$(GO) test -race -count=1 ./...

clean:
	$(GO) clean ./...
