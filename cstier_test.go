package dip

// Tiered content-store acceptance tests: the cold tier must never block a
// forwarder. The proof is constructive — cold reads are held in flight by
// a test gate while hot-tier interests keep being served through the same
// router; only after the gate opens do the parked interests complete, via
// the async re-injection path (data packet → F_PIT consume → replicate to
// the recorded ports → hot-tier promotion).

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"dip/internal/core"
)

const (
	ctHotCap   = 8
	ctConsumer = 0
)

// tieredRig is one router with a two-tier store, port 0 capturing output.
type tieredRig struct {
	r       *Router
	tiered  *TieredStore
	mu      sync.Mutex
	replies []uint32 // data names seen on the consumer port
	gotData chan uint32
}

func newTieredRig(t *testing.T, readers int, gate func()) *tieredRig {
	t.Helper()
	rig := &tieredRig{gotData: make(chan uint32, 256)}
	st := NewNodeState()
	tiered, err := st.EnableTieredCache(ctHotCap, 1, TieredConfig{
		Slots:    128,
		SlotSize: 256,
		Readers:  readers,
		ReadGate: gate,
	})
	if err != nil {
		t.Fatalf("EnableTieredCache: %v", err)
	}
	t.Cleanup(func() { tiered.Close() })
	rig.tiered = tiered
	rig.r = NewRouter(st.OpsConfig(), RouterOptions{Name: "edge"})
	rig.r.AttachPort(PortFunc(func(pkt []byte) {
		if name, ok := DataName(pkt); ok {
			rig.mu.Lock()
			rig.replies = append(rig.replies, name)
			rig.mu.Unlock()
			rig.gotData <- name
		}
	}))
	// Completed cold reads re-enter as ordinary data packets; HandlePacket
	// is safe to call from the reader goroutine concurrently with the
	// test's own submissions, exactly as worker forwarders do.
	tiered.SetReinject(func(name uint32, data []byte, _, _ int64) {
		pkt, err := BuildPacket(NDNDataProfile(name), data)
		if err != nil {
			return
		}
		rig.r.HandlePacket(pkt, ctConsumer)
	})
	return rig
}

// preload pushes names 0xAA000000+i through the tiered store so that the
// low names have spilled cold and only the newest ctHotCap remain hot.
func (rig *tieredRig) preload(t *testing.T, n int) {
	t.Helper()
	payload := []byte("tier-payload-XXXX")
	for i := 0; i < n; i++ {
		name := uint32(0xAA000000 + i)
		rig.tiered.Put(name, payload)
		rig.tiered.GetHot(name) // touch: admit to cold on eviction
	}
	// Spills ride the async queue; wait until the worker has indexed every
	// eviction so cold lookups below are deterministic.
	want := uint64(n - ctHotCap)
	for i := 0; rig.tiered.Stats().Spilled < want; i++ {
		if i > 5000 {
			t.Fatalf("only %d/%d spills completed", rig.tiered.Stats().Spilled, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func (rig *tieredRig) interest(t *testing.T, name uint32) {
	t.Helper()
	pkt, err := BuildPacket(NDNInterestProfile(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.r.HandlePacket(pkt, ctConsumer)
}

// TestColdReadNeverBlocksForwarder is the headline acceptance pin. A cold
// read is parked inside the gate; while it is in flight the hot path must
// keep serving — every hot-tier interest completes with the gate still
// closed, which is only possible if RequestCold returned without waiting
// on the pread. Opening the gate then satisfies the parked interest
// through re-injection.
func TestColdReadNeverBlocksForwarder(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	rig := newTieredRig(t, 1, func() {
		entered <- struct{}{}
		<-release
	})
	rig.preload(t, 32) // 0xAA000000..0xAA00001F; 0..23 cold, 24..31 hot

	coldName := uint32(0xAA000000)
	hotName := uint32(0xAA000000 + 31)
	rig.interest(t, coldName)
	select {
	case <-entered: // the reader goroutine is now parked mid-read
	case <-time.After(5 * time.Second):
		t.Fatal("cold read never started")
	}

	// With the cold read pinned in flight, the forwarding path must stay
	// fully available: 100 hot-tier interests, all served from RAM.
	start := time.Now()
	for i := 0; i < 100; i++ {
		rig.interest(t, hotName)
	}
	hotElapsed := time.Since(start)
	hotServed := 0
	for deadline := time.After(5 * time.Second); hotServed < 100; {
		select {
		case name := <-rig.gotData:
			if name == coldName {
				t.Fatal("cold data delivered while the read was gated")
			}
			if name == hotName {
				hotServed++
			}
		case <-deadline:
			t.Fatalf("only %d/100 hot replies while cold read in flight", hotServed)
		}
	}
	// Sanity bound, far above any hot-path cost but far below a blocked
	// forwarder waiting on the gate: 100 RAM hits must be near-instant.
	if hotElapsed > 2*time.Second {
		t.Fatalf("hot path took %v with a cold read in flight", hotElapsed)
	}
	if st := rig.tiered.Stats(); st.PendingReads != 1 {
		t.Fatalf("PendingReads = %d with the gate closed, want 1", st.PendingReads)
	}

	close(release)
	select {
	case name := <-rig.gotData:
		if name != coldName {
			t.Fatalf("post-release delivery was %#08x, want the cold name", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked interest never satisfied after gate release")
	}
	st := rig.tiered.Stats()
	if st.Reinjected != 1 || st.ReadErrors != 0 {
		t.Fatalf("Reinjected=%d ReadErrors=%d", st.Reinjected, st.ReadErrors)
	}
	// Re-injection runs the data packet through F_PIT, whose cache insert
	// promotes the payload: the next interest for it is a hot hit.
	if _, ok := rig.tiered.GetHot(coldName); !ok {
		t.Fatal("cold payload not promoted to hot tier after re-injection")
	}
}

// TestColdInterestAggregation: interests for the same cold name arriving
// while its read is in flight aggregate onto the parked PIT entry — one
// read, one re-injection, every requester answered.
func TestColdInterestAggregation(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	rig := newTieredRig(t, 1, func() {
		entered <- struct{}{}
		<-release
	})
	rig.preload(t, 32)

	coldName := uint32(0xAA000001)
	rig.interest(t, coldName)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("cold read never started")
	}
	for i := 0; i < 4; i++ {
		rig.interest(t, coldName) // aggregates; must not start more reads
	}
	if st := rig.tiered.Stats(); st.PendingReads != 1 {
		t.Fatalf("PendingReads = %d after aggregation, want 1", st.PendingReads)
	}
	close(release)
	select {
	case name := <-rig.gotData:
		if name != coldName {
			t.Fatalf("delivered %#08x, want %#08x", name, coldName)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aggregated interests never satisfied")
	}
	if st := rig.tiered.Stats(); st.Reinjected != 1 {
		t.Fatalf("Reinjected = %d, want exactly 1 for the aggregated set", st.Reinjected)
	}
}

// TestTieredMetricsExported drives traffic over both tiers and asserts the
// dip_cs_* per-tier series appear on the metrics surface.
func TestTieredMetricsExported(t *testing.T) {
	rig := newTieredRig(t, 1, nil)
	rig.preload(t, 32)
	rig.interest(t, 0xAA00001F) // hot hit
	rig.interest(t, 0xAA000002) // cold hit → park → async reinject
	select {
	case <-rig.gotData:
	case <-time.After(5 * time.Second):
		t.Fatal("no data delivered")
	}

	var buf bytes.Buffer
	src := MetricsSource{
		Node:   "edge",
		CS:     rig.tiered,
		CSTier: rig.tiered.Stats,
	}
	src.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`dip_cs_tier_hits_total{node="edge",tier="hot"}`,
		`dip_cs_tier_hits_total{node="edge",tier="cold"}`,
		"dip_cs_tier_misses_total",
		"dip_cs_spilled_total",
		"dip_cs_admission_filtered_total",
		"dip_cs_cold_read_ns_count",
		`dip_cs_cold_slots{node="edge",state="used"}`,
		"dip_cs_reinjected_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	st := rig.tiered.Stats()
	if st.HotHits == 0 || st.ColdHits == 0 || st.Spilled == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestZeroAllocTieredHotHit pins that the tiered store's hot hit keeps the
// engine path allocation-free — layering the cold tier must cost the fast
// path nothing.
func TestZeroAllocTieredHotHit(t *testing.T) {
	st := NewNodeState()
	tiered, err := st.EnableTieredCache(64, 1, TieredConfig{Slots: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	name := uint32(0xAA000000)
	tiered.Put(name, []byte("cached payload"))
	engine := core.NewEngine(NewRouterRegistry(st.OpsConfig()), Limits{})
	pkt, err := BuildPacket(NDNInterestProfile(name), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ctx ExecContext
	run := func() {
		pkt[3] = 64 // restore hop limit
		v, err := ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 0)
		engine.Process(&ctx)
		if ctx.Verdict != VerdictAbsorb || ctx.Cached == nil {
			t.Fatal("interest not served from hot tier")
		}
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("tiered hot hit allocates %.1f/op, want 0", n)
	}
}
