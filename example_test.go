package dip_test

// Godoc examples for the public API: each runs as a test and appears on the
// package documentation page.

import (
	"bytes"
	"fmt"

	"dip"
)

// A DIP router forwards whatever protocol the packet composes — here the
// canonical IP realization.
func Example_forwarding() {
	state := dip.NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1})
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{})
	r.AttachPort(dip.PortFunc(func([]byte) {}))
	r.AttachPort(dip.PortFunc(func(pkt []byte) {
		v, _ := dip.ParsePacket(pkt)
		fmt.Printf("forwarded %d bytes, payload %q\n", len(pkt), v.Payload())
	}))

	pkt, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{192, 0, 2, 1}, [4]byte{10, 0, 0, 7}), []byte("hi"))
	r.HandlePacket(pkt, 0)
	// Output: forwarded 28 bytes, payload "hi"
}

// NDN on the same primitive: the interest records PIT state, the data
// consumes it and flows back.
func Example_ndn() {
	state := dip.NewNodeState()
	state.NameFIB.AddUint32(0xAA000000, 8, dip.NextHop{Port: 1})
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{})
	r.AttachPort(dip.PortFunc(func(pkt []byte) {
		v, _ := dip.ParsePacket(pkt)
		fmt.Printf("data back to the consumer: %q\n", v.Payload())
	}))
	r.AttachPort(dip.PortFunc(func([]byte) {
		fmt.Println("interest forwarded upstream")
	}))

	interest, _ := dip.BuildPacket(dip.NDNInterestProfile(0xAA000042), nil)
	r.HandlePacket(interest, 0)
	data, _ := dip.BuildPacket(dip.NDNDataProfile(0xAA000042), []byte("bits"))
	r.HandlePacket(data, 1)
	// Output:
	// interest forwarded upstream
	// data back to the consumer: "bits"
}

// OPT source authentication and path validation: the router updates the
// tags; the destination, holding the session keys, verifies the exact path.
func Example_opt() {
	routerSecret, _ := dip.NewSecret("r1", bytes.Repeat([]byte{1}, 16))
	destSecret, _ := dip.NewSecret("dst", bytes.Repeat([]byte{2}, 16))
	sess, _ := dip.NewSession(dip.MAC2EM, []dip.HopConfig{{Secret: routerSecret}}, destSecret)

	state := dip.NewNodeState()
	state.EnableOPT(routerSecret, dip.MAC2EM, [16]byte{}, 0)
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{})

	payload := []byte("protected")
	h, _ := dip.OPTProfile(sess, payload, 1)
	pkt, _ := dip.BuildPacket(h, payload)
	r.HandlePacket(pkt, 0)

	dst := dip.NewHost()
	dst.Sessions.Add(sess)
	rx := dst.HandlePacket(pkt)
	fmt.Println(rx.Kind)
	// Output: delivered
}
