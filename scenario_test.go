package dip

// Multi-AS systems test tying §2.3 and §2.4 together: a source wants
// OPT-protected delivery to another AS; the default path crosses a legacy
// AS that cannot run the authentication FNs. The source learns this twice —
// proactively from the AS-level FN propagation graph, and reactively from
// the legacy router's FN-unsupported notification — and succeeds by
// steering onto the FN-capable path.

import (
	"bytes"
	"testing"

	"dip/internal/bootstrap"
	"dip/internal/netsim"
)

func TestMultiASHeterogeneousPathSelection(t *testing.T) {
	// Control plane: AS graph with FN catalogs (§2.3's propagation).
	authKeys := []Key{KeyParm, KeyMAC, KeyMark}
	full := bootstrap.Catalog{
		{Key: KeyMatch32}, {Key: KeySource},
		{Key: KeyParm, Policy: PolicySignal},
		{Key: KeyMAC, Policy: PolicySignal},
		{Key: KeyMark, Policy: PolicySignal},
	}
	legacy := bootstrap.Catalog{{Key: KeyMatch32}, {Key: KeySource}}
	g := bootstrap.NewASGraph()
	g.AddAS("A", full)
	g.AddAS("B-legacy", legacy)
	g.AddAS("D", full)
	g.AddAS("C", full)
	g.Peer("A", "B-legacy")
	g.Peer("B-legacy", "C")
	g.Peer("A", "D")
	g.Peer("D", "C")

	// Proactive check: the graph warns that A→C may cross the legacy AS.
	path, ok := g.PathSupports("A", "C", authKeys...)
	viaLegacy := len(path) == 3 && path[1] == "B-legacy"
	if viaLegacy && ok {
		t.Fatal("graph claims legacy AS supports path authentication")
	}

	// Data plane: two candidate next hops out of AS A — port 0 toward the
	// legacy AS B, port 1 toward the capable AS D.
	sim := netsim.New()
	svD, _ := NewSecret("D", bytes.Repeat([]byte{0xDD}, 16))
	dstSecret, _ := NewSecret("dstC", bytes.Repeat([]byte{0xCC}, 16))
	sess, err := NewSession(MAC2EM, []HopConfig{{Secret: svD}}, dstSecret)
	if err != nil {
		t.Fatal(err)
	}

	// Legacy AS B: forwards IP but signals on the auth FNs (per its
	// advertised catalog).
	legacyState := NewNodeState()
	legacyState.FIB32.AddUint32(0x0C000000, 8, NextHop{Port: 1})
	legacyReg := NewRouterRegistry(OpsConfig{FIB32: legacyState.FIB32})
	for _, k := range authKeys {
		legacyReg.SetPolicy(k, PolicySignal)
	}
	routerB := NewRouterWithRegistry(legacyReg, RouterOptions{Name: "B-legacy"})

	// Capable AS D.
	stateD := NewNodeState()
	stateD.EnableOPT(svD, MAC2EM, [16]byte{}, 0)
	stateD.FIB32.AddUint32(0x0C000000, 8, NextHop{Port: 1})
	routerD := NewRouter(stateD.OpsConfig(), RouterOptions{Name: "D"})

	// Destination host in AS C.
	dstHost := NewHost()
	dstHost.Sessions.Add(sess)
	var delivered *Rx
	destination := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		rx := dstHost.HandlePacket(pkt)
		delivered = &rx
	})

	// Source host in AS A: reacts to FN-unsupported notifications.
	srcHost := NewHost()
	var notified *Rx
	sourceRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		rx := srcHost.HandlePacket(pkt)
		notified = &rx
	})

	routerB.AttachPort(sim.Pipe(sourceRx, 0, 1e6, 0))    // back to the source
	routerB.AttachPort(sim.Pipe(destination, 0, 1e6, 0)) // toward C (never used for OPT)
	routerD.AttachPort(sim.Pipe(sourceRx, 0, 1e6, 0))
	routerD.AttachPort(sim.Pipe(destination, 0, 1e6, 0))

	// The OPT packet: auth chain + DIP-32 forwarding toward AS C's prefix,
	// with F_source so notifications can find their way back.
	buildPacket := func() []byte {
		payload := []byte("cross-AS verified")
		h, err := OPTProfile(sess, payload, 7)
		if err != nil {
			t.Fatal(err)
		}
		off := uint16(len(h.Locations) * 8)
		h.Locations = append(h.Locations, 12, 0, 0, 9 /* dst in C */, 10, 0, 0, 1 /* src in A */)
		h.FNs = append([]FN{
			{Loc: off, Len: 32, Key: KeyMatch32},
			{Loc: off + 32, Len: 32, Key: KeySource},
		}, h.FNs...)
		pkt, err := BuildPacket(h, payload)
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}

	// Attempt 1: the source naively uses the legacy path. The packet is
	// dropped and the source is notified which FN the AS lacks.
	sim.Schedule(0, func() { routerB.HandlePacket(buildPacket(), 0) })
	sim.Run()
	if delivered != nil {
		t.Fatal("packet crossed the legacy AS despite signalling policy")
	}
	if notified == nil || notified.Kind != RxFNUnsupported {
		t.Fatalf("no FN-unsupported notification: %+v", notified)
	}
	if notified.Key != KeyParm {
		t.Errorf("notification names %v, want F_parm", notified.Key)
	}

	// Attempt 2: steer onto the capable AS D (which the control-plane graph
	// also recommends once the legacy AS is excluded).
	g2 := bootstrap.NewASGraph()
	g2.AddAS("A", full)
	g2.AddAS("D", full)
	g2.AddAS("C", full)
	g2.Peer("A", "D")
	g2.Peer("D", "C")
	if _, ok := g2.PathSupports("A", "C", authKeys...); !ok {
		t.Fatal("capable path not recognized by the graph")
	}
	sim.Schedule(0, func() { routerD.HandlePacket(buildPacket(), 0) })
	sim.Run()
	if delivered == nil {
		t.Fatal("packet lost on the capable path")
	}
	if delivered.Kind != RxDelivered {
		t.Fatalf("destination rejected: %v/%v", delivered.Kind, delivered.Reason)
	}
	if !bytes.Equal(delivered.Payload, []byte("cross-AS verified")) {
		t.Errorf("payload %q", delivered.Payload)
	}
}

// XIA+OPT: the second derived protocol — DAG routing with per-hop path
// authentication — across two routers, with the destination verifying the
// chain and detecting a bypassed router.
func TestXIAOPTSecureDAGRouting(t *testing.T) {
	sim := netsim.New()
	ad := XID{Type: 0x10}
	copy(ad.ID[:], "ad")
	sid := XID{Type: 0x12}
	copy(sid.ID[:], "svc")
	dag := &DAG{
		SrcEdges: []int{1, 0},
		Nodes: []DAGNode{
			{XID: ad, Edges: []int{1}},
			{XID: sid},
		},
	}

	sv1, _ := NewSecret("x1", bytes.Repeat([]byte{0x31}, 16))
	sv2, _ := NewSecret("x2", bytes.Repeat([]byte{0x32}, 16))
	dstSecret, _ := NewSecret("svc-host", bytes.Repeat([]byte{0x33}, 16))
	sess, err := NewSession(MAC2EM, []HopConfig{
		{Secret: sv1, HopIndex: 0},
		{Secret: sv2, HopIndex: 1},
	}, dstSecret)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(sv *SecretValue, hopIndex uint8, cfg func(*NodeState)) *Router {
		st := NewNodeState()
		st.EnableOPT(sv, MAC2EM, [16]byte{}, hopIndex)
		cfg(st)
		return NewRouter(st.OpsConfig(), RouterOptions{})
	}
	// R1 routes toward the AD; R2 is inside the AD and hosts the service.
	r1 := mk(sv1, 0, func(st *NodeState) { st.XIARoutes.AddRoute(ad, 0) })
	var deliveredPkt []byte
	r2 := mk(sv2, 1, func(st *NodeState) {
		st.XIARoutes.AddLocal(ad)
		st.XIARoutes.AddLocal(sid)
	})

	serviceHost := NewHost()
	serviceHost.Sessions.Add(sess)
	var rx *Rx
	r2dc := RouterOptions{LocalDelivery: func(pkt []byte, _ int) {
		deliveredPkt = append([]byte(nil), pkt...)
		got := serviceHost.HandlePacket(pkt)
		rx = &got
	}}
	// Rebuild r2 with the delivery hook (options are set at construction).
	st2 := NewNodeState()
	st2.EnableOPT(sv2, MAC2EM, [16]byte{}, 1)
	st2.XIARoutes.AddLocal(ad)
	st2.XIARoutes.AddLocal(sid)
	r2 = NewRouter(st2.OpsConfig(), r2dc)

	r1.AttachPort(sim.Pipe(netsim.ReceiverFunc(r2.HandlePacket), 0, 1e6, 0))

	payload := []byte("authenticated service call")
	h, err := XIAOPTProfile(dag, sess, payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := BuildPacket(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	sim.Schedule(0, func() { r1.HandlePacket(pkt, 0) })
	sim.Run()

	if rx == nil {
		t.Fatal("service host received nothing")
	}
	if rx.Kind != RxDelivered || !bytes.Equal(rx.Payload, payload) {
		t.Fatalf("rx %v/%v payload %q", rx.Kind, rx.Reason, rx.Payload)
	}
	_ = deliveredPkt

	// Bypass R1 (send straight to R2): the destination must reject the
	// packet because hop 0's tag chain is missing.
	rx = nil
	h2, _ := XIAOPTProfile(dag, sess, payload, 5)
	pkt2, _ := BuildPacket(h2, payload)
	r2.HandlePacket(pkt2, 0)
	if rx == nil {
		t.Fatal("bypass run: nothing delivered to host stack")
	}
	if rx.Kind != RxRejected {
		t.Fatalf("bypassed-hop packet accepted: %v", rx.Kind)
	}
}
