package dip

// Soak test: a randomly wired multi-router fabric under a mixed workload,
// checking global invariants — no panics, conservation (every packet is
// forwarded, delivered, absorbed or dropped for a counted reason), and no
// packet loops forever (hop limits bound everything).

import (
	"bytes"
	"math/rand"
	"testing"

	"dip/internal/netsim"
	"dip/internal/telemetry"
	"dip/internal/workload"
)

func TestFabricSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const nRouters = 10
	rng := rand.New(rand.NewSource(7))
	sim := netsim.New()

	secret, _ := NewSecret("fabric", bytes.Repeat([]byte{9}, 16))
	dstSecret, _ := NewSecret("dst", bytes.Repeat([]byte{8}, 16))
	sess, err := NewSession(MAC2EM, []HopConfig{{Secret: secret}}, dstSecret)
	if err != nil {
		t.Fatal(err)
	}

	metrics := make([]*telemetry.Metrics, nRouters)
	routers := make([]*Router, nRouters)
	states := make([]*NodeState, nRouters)
	for i := 0; i < nRouters; i++ {
		st := NewNodeState().EnableCache(64)
		st.EnableOPT(secret, MAC2EM, [16]byte{}, 0)
		states[i] = st
		metrics[i] = &telemetry.Metrics{}
		routers[i] = NewRouter(st.OpsConfig(), RouterOptions{Metrics: metrics[i]})
	}
	// Ring + random chords; port p of router i reaches a peer.
	for i := 0; i < nRouters; i++ {
		peers := []int{(i + 1) % nRouters, rng.Intn(nRouters)}
		for _, p := range peers {
			p := p
			routers[i].AttachPort(sim.Pipe(
				netsim.ReceiverFunc(routers[p].HandlePacket), rng.Intn(2), 1e5, 0))
		}
		// Random routes spraying traffic onto the fabric.
		states[i].FIB32.AddUint32(uint32(workload.AddrPrefixByte)<<24, 8, NextHop{Port: rng.Intn(2)})
		pfx := make([]byte, 16)
		pfx[0] = workload.Addr6PrefixByte
		states[i].FIB128.Add(pfx, 8, NextHop{Port: rng.Intn(2)})
		states[i].NameFIB.AddUint32(workload.NamePrefix, 8, NextHop{Port: rng.Intn(2)})
	}

	tr, err := workload.Generate(workload.Spec{
		Weights: map[workload.Protocol]float64{
			workload.ProtoIPv4:   3,
			workload.ProtoIPv6:   2,
			workload.ProtoNDN:    3,
			workload.ProtoOPT:    1,
			workload.ProtoNDNOPT: 1,
		},
		Names:   256,
		ZipfS:   1.3,
		Ports:   2,
		Session: sess,
		Seed:    99,
	}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Packets {
		p := tr.Packets[i]
		entry := rng.Intn(nRouters)
		sim.Schedule(0, func() { routers[entry].HandlePacket(p.Buf, p.InPort) })
	}
	events := sim.Run()
	if events == 0 {
		t.Fatal("nothing happened")
	}

	var received, accounted int64
	for i, m := range metrics {
		s := m.Snapshot()
		received += s.Received
		accounted += s.Forwarded + s.Delivered + s.Absorbed + s.NoAction
		for reason, n := range s.Drops {
			accounted += n
			switch reason.String() {
			case "hop-limit", "no-route", "pit-miss":
				// Expected under random wiring (loops bounded by hop limit,
				// dead ends, duplicate data).
			default:
				t.Errorf("router %d: %d unexpected drops: %v", i, n, reason)
			}
		}
	}
	if received == 0 {
		t.Fatal("no packets processed")
	}
	if received != accounted {
		t.Fatalf("conservation violated: received %d, accounted %d", received, accounted)
	}
	t.Logf("fabric processed %d router-passes over %d injected packets", received, len(tr.Packets))
}
