package dip

import (
	"testing"

	"dip/internal/core"
)

// These tests pin the hot-path allocation contract the benchmarks rely on:
// steady-state forwarding must not touch the heap. testing.AllocsPerRun
// turns a regression (a closure capture, an interface box, a map rehash on
// the wrong path) into a test failure instead of a silent benchmark drift.

func TestZeroAllocEngineProcess(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	engine := core.NewEngine(NewRouterRegistry(state.OpsConfig()), Limits{})
	pkt, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ctx ExecContext
	run := func() {
		pkt[3] = 64 // restore the hop limit the previous pass decremented
		v, err := ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 0)
		engine.Process(&ctx)
	}
	run() // warm up lazy state before counting
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("sequential Engine.Process allocates %.1f/op, want 0", n)
	}
}

// TestZeroAllocTracedEngineProcess repeats the engine contract with the
// full observability stack installed: a sampling trace recorder (1-in-N)
// wrapping live metrics. Both the unsampled and the sampled (ring-writing)
// packets must stay off the heap.
func TestZeroAllocTracedEngineProcess(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	engine := core.NewEngine(NewRouterRegistry(state.OpsConfig()), Limits{})
	engine.SetRecorder(NewTraceRecorder(&Metrics{}, 8, 64))
	pkt, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ctx ExecContext
	run := func() {
		pkt[3] = 64
		v, err := ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 0)
		engine.Process(&ctx)
	}
	run()
	// 160 runs at 1-in-8 sampling exercise the ring-writing path ~20 times.
	if n := testing.AllocsPerRun(160, run); n != 0 {
		t.Fatalf("traced Engine.Process allocates %.1f/op, want 0", n)
	}
}

// TestZeroAllocJourneyTapUnsampled pins the journeys-off cost of a
// journey.RouterTap on the forwarding path: with a sampling rate so sparse
// no packet in the run is spanned, the tap must add only its stripe-counter
// bump — no heap traffic.
func TestZeroAllocJourneyTapUnsampled(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	engine := core.NewEngine(NewRouterRegistry(state.OpsConfig()), Limits{})
	sink := NewJourneyEmitter(64)
	engine.SetRecorder(NewRouterJourneyTap("R", sink, &Metrics{}, 1<<30, nil))
	pkt, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ctx ExecContext
	run := func() {
		pkt[3] = 64
		v, err := ParsePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 0)
		engine.Process(&ctx)
	}
	run()
	if n := testing.AllocsPerRun(160, run); n != 0 {
		t.Fatalf("journey-tapped Engine.Process allocates %.1f/op, want 0", n)
	}
	if sink.Added() != 0 {
		t.Fatalf("unsampled run emitted %d spans, want 0", sink.Added())
	}
}

// TestZeroAllocBurstPath pins the steady-state burst dataplane: burst
// submission (classification, flow-dispatch hashing, ring enqueue) plus
// a full Pump (burst collection, one pooled context per burst, engine
// processing per packet) must stay at 0 allocs/packet. Pump mode keeps
// the measurement on one goroutine, which is exactly the code path the
// forwarder goroutines run.
func TestZeroAllocBurstPath(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0, 0, Local)
	r := NewRouter(state.OpsConfig(), RouterOptions{
		LocalDelivery: func([]byte, int) {},
	})
	in := r.ServeGuarded(ServeConfig{Workers: 0, Batch: 64, HighDepth: 128, LowDepth: 128})
	defer in.Close()
	pkts := make([][]byte, 64)
	for i := range pkts {
		// Distinct sources → distinct flow keys → the dispatch hash runs
		// over a different locations region for every packet.
		p, err := BuildPacket(IPv4Profile([4]byte{10, 0, byte(i), 1}, [4]byte{2, 2, 2, 2}), nil)
		if err != nil {
			t.Fatal(err)
		}
		pkts[i] = p
	}
	run := func() {
		for _, p := range pkts {
			p[3] = 64 // restore the hop limit the previous pass decremented
		}
		if n := in.SubmitBurst(pkts, 0); n != 64 {
			t.Fatalf("accepted %d/64", n)
		}
		if n := in.Pump(); n != 64 {
			t.Fatalf("pumped %d/64", n)
		}
	}
	run() // warm the context pool and lazy state before counting
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("burst path allocates %.1f/burst, want 0", n)
	}
}

// TestZeroAllocTracedBurstPath repeats the burst contract with a sampling
// trace recorder installed: the amortized burst sampling plan (one striped
// counter update per burst, local countdown per packet) and the sampled
// ring writes must both stay off the heap.
func TestZeroAllocTracedBurstPath(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0, 0, Local)
	m := &Metrics{}
	r := NewRouter(state.OpsConfig(), RouterOptions{
		Metrics:       m,
		Trace:         NewTraceRecorder(m, 8, 64),
		LocalDelivery: func([]byte, int) {},
	})
	in := r.ServeGuarded(ServeConfig{Workers: 0, Batch: 64, HighDepth: 128, LowDepth: 128})
	defer in.Close()
	pkts := make([][]byte, 64)
	for i := range pkts {
		p, err := BuildPacket(IPv4Profile([4]byte{10, 0, byte(i), 1}, [4]byte{2, 2, 2, 2}), nil)
		if err != nil {
			t.Fatal(err)
		}
		pkts[i] = p
	}
	run := func() {
		for _, p := range pkts {
			p[3] = 64
		}
		if n := in.SubmitBurst(pkts, 0); n != 64 {
			t.Fatalf("accepted %d/64", n)
		}
		if n := in.Pump(); n != 64 {
			t.Fatalf("pumped %d/64", n)
		}
	}
	run()
	// 1-in-8 sampling writes the trace ring 8 times per 64-packet burst.
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("traced burst path allocates %.1f/burst, want 0", n)
	}
}

func TestZeroAllocFIBLookup(t *testing.T) {
	state := NewNodeState()
	for i := uint32(0); i < 1024; i++ {
		state.FIB32.AddUint32(i<<20, 12, NextHop{Port: int(i & 7)})
	}
	i := uint32(0)
	if n := testing.AllocsPerRun(1000, func() {
		state.FIB32.LookupUint32(i << 20)
		i = (i + 1) & 1023
	}); n != 0 {
		t.Fatalf("fib.Table.Lookup allocates %.1f/op, want 0", n)
	}
}

func TestZeroAllocPITCycle(t *testing.T) {
	p := NewNodeState().PIT
	buf := make([]int, 0, 8)
	k := uint32(0)
	cycle := func() {
		if _, err := p.AddInterest(k, int(k&3)); err != nil {
			t.Fatal(err)
		}
		buf, _ = p.Consume(buf[:0], k)
		k = (k + 1) & 4095
	}
	// Warm the shard maps, free lists, and per-port counters.
	for i := 0; i < 8192; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(1000, cycle); n != 0 {
		t.Fatalf("pit create/consume allocates %.1f/op, want 0", n)
	}
}

func TestZeroAllocContentStoreGet(t *testing.T) {
	s := NewNodeState().EnableCache(64).ContentStore
	payload := []byte("cached-object-payload")
	for i := uint32(0); i < 64; i++ {
		s.Put(i, payload)
	}
	i := uint32(0)
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Get(i); !ok {
			t.Fatal("expected hit")
		}
		i = (i + 1) & 63
	}); n != 0 {
		t.Fatalf("cs.Store.Get allocates %.1f/op, want 0", n)
	}
}
